"""A reconnecting wire client that survives a hostile network.

:class:`WireClient` is the producer half of the sequenced session
protocol (:mod:`repro.wire.session`): it connects to an
:class:`~repro.service.IngestionService` socket, introduces itself with
a hello line naming a stable ``client_id``, and streams encoded report
frames wrapped in monotonically numbered envelopes. Delivery is
*effectively exactly once* against arbitrary connection failure:

* every frame is retained in memory until the server reports it
  **durable** (covered by an on-disk checkpoint) — not merely acked —
  so even a server that is killed and restored from its last snapshot
  can be given back exactly the frames the snapshot missed;
* on every (re)connect the server's handshake reply says which sequence
  it last *admitted*; the client resends everything after it, in order,
  and the server's per-client watermark silently drops any overlap — so
  a connection cut between admit and ack cannot double-count a frame;
* reconnects use the same jittered exponential backoff schedule
  (:func:`~repro.robustness.backoff_delay`) as the executor's retry
  path — one backoff policy for the whole codebase.

Failure surfaces only when the situation is hopeless: the server
unreachable past the reconnect budget, the session refused (admission
control ban or version mismatch), or ack progress stalled past the
stall budget. All of those raise :class:`~repro.errors.ClientError`;
transient disconnects never do.

The client is deliberately single-flow: one coroutine calls
:meth:`send` / :meth:`drain` / :meth:`close`; acks are read inline when
the unacked window fills and during drain, so there is no background
task to leak or race. Chaos tests drive the send path through a
:class:`~repro.robustness.NetworkFaultInjector` that deterministically
drops, garbles, stalls, or disconnects scripted sends.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import Any, Dict, Optional, Union

from repro.errors import ClientError, WireError
from repro.rng import ensure_rng
from repro.robustness.faults import NetworkFaultInjector, backoff_delay
from repro.service.ingest import LatencyWindow
from repro.wire import (encode_envelope, hello_line, parse_ack,
                        parse_session_reply)

__all__ = ["ClientStats", "WireClient"]


class ClientStats:
    """Counters for one wire client, mirroring :class:`ServiceStats`.

    ``ack_latency`` is the send→ack round trip for the most recent
    window of frames — under chaos this is the client-visible
    throughput-shaping number, so the soak benchmark reports it.
    """

    def __init__(self, latency_window: int = 8192):
        self.frames_sent = 0        # unique frames that hit the socket
        self.frames_resent = 0      # retransmissions after reconnects
        self.acks_received = 0
        self.bytes_sent = 0
        self.connects = 0
        self.reconnects = 0
        self.connect_failures = 0
        self.ack_stalls = 0
        self.ack_latency = LatencyWindow(latency_window)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "frames_sent": self.frames_sent,
            "frames_resent": self.frames_resent,
            "acks_received": self.acks_received,
            "bytes_sent": self.bytes_sent,
            "connects": self.connects,
            "reconnects": self.reconnects,
            "connect_failures": self.connect_failures,
            "ack_stalls": self.ack_stalls,
            "ack_latency": self.ack_latency.summary(),
        }


class WireClient:
    """Resilient sequenced-session producer for one ingestion service.

    Parameters
    ----------
    host, port:
        The service socket (as returned by
        :meth:`~repro.service.IngestionService.serve`).
    client_id:
        Stable logical sender identity; the server keys duplicate
        suppression on it, so it must survive reconnects *and* process
        restarts that intend to resume the same stream.
    max_unacked:
        Soft window: :meth:`send` blocks reading acks once this many
        frames are outstanding, bounding retained memory and giving the
        server's backpressure a path to the producer.
    max_connect_attempts:
        Consecutive connection failures tolerated before
        :class:`~repro.errors.ClientError`; the reconnect delay between
        attempts follows ``backoff_base``/``backoff_cap``/
        ``backoff_jitter`` via :func:`~repro.robustness.backoff_delay`.
    ack_timeout, max_ack_stalls:
        Seconds to wait for each ack line and how many consecutive
        no-progress rounds (each forcing a reconnect-and-resend) to
        tolerate before giving up. Covers the dropped-final-frame case
        that sequence-gap detection cannot see.
    rng:
        Seedable jitter source (anything
        :func:`~repro.rng.ensure_rng` accepts) so chaos tests replay.
    fault_injector:
        Optional :class:`~repro.robustness.NetworkFaultInjector`; every
        socket write consults it, keyed by a global send index.
    """

    def __init__(self, host: str, port: int, client_id: str, *,
                 max_unacked: int = 256,
                 max_connect_attempts: int = 8,
                 backoff_base: float = 0.05,
                 backoff_cap: float = 2.0,
                 backoff_jitter: float = 0.1,
                 ack_timeout: float = 5.0,
                 max_ack_stalls: int = 8,
                 rng=None,
                 fault_injector: Optional[NetworkFaultInjector] = None):
        if max_unacked < 1:
            raise ValueError(f"max_unacked must be >= 1, got {max_unacked}")
        if max_connect_attempts < 1:
            raise ValueError(
                f"max_connect_attempts must be >= 1, "
                f"got {max_connect_attempts}")
        if max_ack_stalls < 1:
            raise ValueError(
                f"max_ack_stalls must be >= 1, got {max_ack_stalls}")
        if ack_timeout <= 0:
            raise ValueError(f"ack_timeout must be > 0, got {ack_timeout}")
        hello_line(client_id)  # validate eagerly; raises WireError
        self.host = host
        self.port = port
        self.client_id = client_id
        self.max_unacked = max_unacked
        self.max_connect_attempts = max_connect_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_jitter = backoff_jitter
        self.ack_timeout = ack_timeout
        self.max_ack_stalls = max_ack_stalls
        self.stats = ClientStats()
        self._rng = ensure_rng(rng)
        self._faults = fault_injector
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._next_seq = 1           # next sequence number to assign
        self._acked = 0              # server's admitted watermark
        self._durable = 0            # server's checkpointed watermark
        self._conn_sent = 0          # last seq written on this connection
        self._max_transmitted = 0    # distinguishes sends from resends
        self._send_index = 0         # global write counter (fault key)
        self._pending: Dict[int, bytes] = {}   # seq -> encoded frame
        self._sent_at: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # introspection

    @property
    def acked_seq(self) -> int:
        """Highest sequence the server has reported admitted."""
        return self._acked

    @property
    def durable_seq(self) -> int:
        """Highest sequence the server has reported checkpointed."""
        return self._durable

    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def pending_frames(self) -> int:
        """Frames retained because the server has not made them durable."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # lifecycle

    async def connect(self) -> "WireClient":
        """Open (or re-open) the session; raises ClientError if hopeless."""
        await self._ensure_connection()
        return self

    async def close(self, *, drain: bool = True) -> None:
        """Drain outstanding frames (by default), then disconnect."""
        try:
            if drain:
                await self.drain()
        finally:
            self._drop_connection()

    async def __aenter__(self) -> "WireClient":
        return await self.connect()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        # Only a clean exit owes the server a full drain; an unwinding
        # body gets a fast disconnect so its own error surfaces.
        await self.close(drain=exc_type is None)

    # ------------------------------------------------------------------
    # sending

    async def send(self, frame: Union[bytes, bytearray]) -> int:
        """Stream one encoded frame; returns its sequence number.

        ``frame`` is a complete wire frame as produced by
        :func:`~repro.wire.encode_report` — the client adds only the
        sequence envelope. The frame is retained until the server
        reports it durable, the write is pushed through the current
        connection (reconnecting and resending as needed), and once the
        unacked window is full the call blocks reading acks — which is
        where server backpressure reaches the producer.
        """
        seq = self._next_seq
        self._next_seq += 1
        self._pending[seq] = bytes(frame)
        await self._pump_out()
        stalls = 0
        while self._next_seq - 1 - self._acked >= self.max_unacked:
            await self._pump_out()
            stalls = await self._await_progress(stalls)
        return seq

    async def drain(self) -> None:
        """Block until every assigned frame has been acked (admitted)."""
        target = self._next_seq - 1
        stalls = 0
        while self._acked < target:
            await self._pump_out()
            stalls = await self._await_progress(stalls)

    # ------------------------------------------------------------------
    # connection machinery

    async def _ensure_connection(self) -> None:
        if self._writer is not None:
            return
        attempt = 0
        while True:
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port)
            except (ConnectionError, OSError) as exc:
                attempt = await self._connect_setback(attempt, exc)
                continue
            try:
                writer.write(hello_line(self.client_id))
                await writer.drain()
                reply = await asyncio.wait_for(reader.readline(),
                                               self.ack_timeout)
                if not reply:
                    raise ConnectionResetError(
                        "server closed during handshake")
                last, durable = parse_session_reply(reply)
                break
            except WireError as exc:
                # The server answered and said no (ban, quota, version):
                # retrying would dig the hole deeper, so surface it.
                self._abandon(writer)
                raise ClientError(
                    f"session with {self.host}:{self.port} refused: "
                    f"{exc}") from exc
            except (ConnectionError, OSError, TimeoutError) as exc:
                self._abandon(writer)
                attempt = await self._connect_setback(attempt, exc)
        self._reader, self._writer = reader, writer
        if self.stats.connects:
            self.stats.reconnects += 1
        self.stats.connects += 1
        # The server is authoritative for the admitted watermark: after
        # a crash-restore it *rewinds*, telling us exactly which
        # previously-acked frames died with the process memory. We can
        # always honor a rewind because frames are only forgotten once
        # durable, and the durable watermark never rewinds (it lives on
        # disk in the very checkpoint the server restored from).
        self._acked = last
        if durable > self._durable:
            self._durable = durable
            self._forget_durable()
        self._conn_sent = last

    async def _connect_setback(self, attempt: int,
                               exc: BaseException) -> int:
        self.stats.connect_failures += 1
        attempt += 1
        if attempt >= self.max_connect_attempts:
            raise ClientError(
                f"{self.host}:{self.port} unreachable after {attempt} "
                f"connection attempts: {exc}") from exc
        await asyncio.sleep(backoff_delay(
            attempt - 1, self.backoff_base, cap=self.backoff_cap,
            jitter=self.backoff_jitter, rng=self._rng))
        return attempt

    def _abandon(self, writer: asyncio.StreamWriter) -> None:
        with contextlib.suppress(Exception):
            writer.close()

    def _drop_connection(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            self._abandon(writer)

    async def _pump_out(self) -> None:
        """Get every assigned frame onto *some* connection, in order."""
        failures = 0
        while True:
            await self._ensure_connection()
            try:
                for seq in range(self._conn_sent + 1, self._next_seq):
                    await self._write_frame(seq)
                    self._conn_sent = seq
                return
            except (ConnectionError, OSError) as exc:
                self._drop_connection()
                failures += 1
                if failures > self.max_connect_attempts:
                    raise ClientError(
                        f"connection to {self.host}:{self.port} died "
                        f"{failures} times without completing a send: "
                        f"{exc}") from exc

    async def _write_frame(self, seq: int) -> None:
        payload = encode_envelope(seq, self._pending[seq])
        index = self._send_index
        self._send_index += 1
        action, stall, disconnect = (
            self._faults.plan_send(index) if self._faults is not None
            else (None, 0.0, False))
        if stall:
            await asyncio.sleep(stall)
        self._sent_at[seq] = time.monotonic()
        if action == "drop":
            pass  # the bytes vanish; the server sees a sequence gap
        elif action == "garble":
            self._writer.write(
                NetworkFaultInjector.garble_bytes(payload, index))
        else:
            self._writer.write(payload)
        if seq > self._max_transmitted:
            self.stats.frames_sent += 1
            self._max_transmitted = seq
        else:
            self.stats.frames_resent += 1
        self.stats.bytes_sent += len(payload)
        await self._writer.drain()
        if disconnect:
            self._drop_connection()
            raise ConnectionResetError("fault-injected disconnect")

    # ------------------------------------------------------------------
    # ack processing

    async def _read_ack(self, timeout: float) -> None:
        if self._reader is None:
            raise ConnectionResetError("not connected")
        line = await asyncio.wait_for(self._reader.readline(), timeout)
        if not line:
            raise ConnectionResetError("server closed the connection")
        seq, durable = parse_ack(line)
        self.stats.acks_received += 1
        sent_at = self._sent_at.pop(seq, None)
        if sent_at is not None:
            self.stats.ack_latency.record(time.monotonic() - sent_at)
        if seq > self._acked:
            self._acked = seq
        if durable > self._durable:
            self._durable = durable
            self._forget_durable()

    async def _await_progress(self, stalls: int) -> int:
        """Read one ack; on any failure, reconnect with backoff.

        Returns the updated consecutive-stall count; raises
        :class:`ClientError` once it exceeds ``max_ack_stalls``. Any
        successful ack resets the count — only a genuinely wedged
        server (or network) exhausts the budget.
        """
        try:
            await self._read_ack(self.ack_timeout)
            return 0
        except (ConnectionError, OSError, TimeoutError,
                WireError) as exc:
            self._drop_connection()
            self.stats.ack_stalls += 1
            stalls += 1
            if stalls > self.max_ack_stalls:
                raise ClientError(
                    f"no ack progress from {self.host}:{self.port} "
                    f"after {stalls} attempts "
                    f"(acked={self._acked}, sent={self._next_seq - 1})"
                ) from exc
            await asyncio.sleep(backoff_delay(
                stalls - 1, self.backoff_base, cap=self.backoff_cap,
                jitter=self.backoff_jitter, rng=self._rng))
            return stalls

    def _forget_durable(self) -> None:
        for seq in [s for s in self._pending if s <= self._durable]:
            del self._pending[seq]
        for seq in [s for s in self._sent_at if s <= self._durable]:
            del self._sent_at[seq]
