"""Asyncio ingestion front door for wire-encoded ε-LDP reports.

:class:`IngestionService` sits between the network and a
:class:`~repro.core.StreamingCollector`: producers submit encoded frames
(or stream them over a socket via :meth:`IngestionService.serve`), a
single consumer task decodes nothing — frames are decoded at submission
so malformed bytes are charged to the submitting peer — validates each
frame's :class:`~repro.robustness.ReportSpec` pin against the collector's
plan, and batches the reports through the existing sanitize→merge
admission path.

Backpressure is structural, not advisory: the pending-frame queue is a
bounded :class:`asyncio.Queue`, so ``await submit(...)`` blocks once the
consumer falls ``max_pending`` frames behind, propagating the slowdown
to the socket reader (which stops reading, which fills the kernel
buffer, which stalls the sender). Nothing is silently shed. Because
submitters *wait* on the consumer, the consumer is not allowed to die:
any exception it meets — expected admission failures and surprises
alike — is captured, the queue keeps draining, and the failure re-raises
from :meth:`stop` and from every subsequent :meth:`submit`.

Socket connections speak either protocol the first bytes announce:

* a raw ``FLW1`` frame stream (the legacy fire-and-forget producer), or
* a **session** opened by a ``FELIP-SESSION`` hello
  (:mod:`repro.wire.session`): every frame arrives in a sequence
  envelope, the service replies with the client's admitted and durable
  watermarks, acks each processed frame, and suppresses duplicates by
  per-``client_id`` last-seen sequence — checked *at admission time* in
  the consumer, so the watermark a checkpoint persists is exactly
  consistent with the collector state it snapshots. This is what makes
  delivery effectively exactly-once across arbitrary reconnects: the
  client retries everything unacked (at-least-once) and the admission
  watermark drops the overlap (at-most-once).

With ``checkpoint_dir`` set the service also drives durability itself:
every ``checkpoint_every`` accepted frames the consumer snapshots the
collector (:func:`~repro.service.checkpoint.save_checkpoint`, including
the per-client watermarks) synchronously — cheap, O(grids) after
compaction — and flushes the blob to disk off the consumer loop in a
background thread, pruning to the newest ``keep_checkpoints`` files.
:class:`ServiceStats` tracks the recovery-point lag (users accepted
since the last durable snapshot — what a crash right now would need to
replay) so operators can bound data-loss exposure.

Per-peer admission control (:class:`~repro.service.admission`) is off by
default; pass ``limits=PeerLimits(...)`` to bound each peer's frame and
byte rate (token buckets that *slow* the peer's own connection, never
honest ones), cap concurrent connections per host, and escalate
temporary bans from the per-peer rejection attribution the collector
already keeps.

Failure semantics follow the collector's
:class:`~repro.robustness.IngestPolicy`: under ``drop``/``quarantine``
bad frames are counted (and attributed to their source) and the stream
keeps flowing; under ``strict`` the first bad frame fails the collection
— the error re-raises from :meth:`stop` and from any subsequent
:meth:`submit`.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from pathlib import Path
from typing import (Any, Callable, Dict, List, NamedTuple, Optional,
                    Tuple, Union)

from repro.core.streaming import StreamingCollector
from repro.errors import IngestError, WireError
from repro.robustness.faults import NetworkFaultInjector
from repro.robustness.ingest import report_user_count
from repro.service.admission import PeerAdmission, PeerLimits
from repro.service.checkpoint import (checkpoint_index, checkpoint_path,
                                      list_checkpoints, prune_checkpoints,
                                      save_checkpoint,
                                      write_checkpoint_file)
from repro.wire import (FrameDecoder, SequencedDecoder, WireFrame,
                        ack_line, decode_frame, parse_hello,
                        refusal_line, session_reply)
from repro.wire.session import HELLO_PREFIX

__all__ = ["IngestionService", "LatencyWindow", "ServiceStats"]

#: sentinel queued by stop() to terminate the consumer after a drain
_STOP = object()


class _Pending(NamedTuple):
    """One queued frame plus everything needed to account and ack it."""

    frame: WireFrame
    source: str
    peer: Optional[str]          # admission-control key (remote host)
    client_id: Optional[str]     # session identity; None for legacy
    seq: int                     # session sequence; 0 for legacy
    ack: Optional[Callable[[int], None]]
    submitted_at: float


class _Durable(NamedTuple):
    """What the world looked like when a checkpoint blob was built."""

    peer_seqs: Dict[str, int]
    users_accepted: int
    frames_accepted: int


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class LatencyWindow:
    """Sliding-window latency sample with percentile summaries.

    A fixed-size ring over the most recent ``window`` observations, so a
    long soak reports current, not lifetime, percentiles. Shared by the
    service (submit→admit latency) and the wire client (send→ack
    round-trip).
    """

    def __init__(self, window: int = 8192):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._window = window
        self._values: List[float] = []
        self._cursor = 0

    def record(self, seconds: float) -> None:
        if len(self._values) < self._window:
            self._values.append(seconds)
        else:  # overwrite in ring order: O(1), no deque reshuffle
            self._values[self._cursor] = seconds
            self._cursor = (self._cursor + 1) % self._window

    def __len__(self) -> int:
        return len(self._values)

    def summary(self) -> Dict[str, float]:
        sample = sorted(self._values)
        return {
            "count": len(sample),
            "p50_ms": _percentile(sample, 0.50) * 1e3,
            "p99_ms": _percentile(sample, 0.99) * 1e3,
            "max_ms": (sample[-1] if sample else 0.0) * 1e3,
        }


class ServiceStats:
    """Counters and latency percentiles for one ingestion service.

    Latency is measured per frame from submission to admission (queue
    wait plus sanitize/merge), over a sliding window of the most recent
    ``latency_window`` frames.

    ``recovery_point_lag`` is the durability exposure: users accepted
    since the newest on-disk checkpoint, i.e. how much work a crash at
    this instant would force session clients to replay (and lose
    entirely for legacy fire-and-forget senders). Zero whenever
    checkpointing is disabled or a snapshot just landed;
    ``recovery_lag_high_watermark`` keeps the worst value seen.
    """

    def __init__(self, latency_window: int = 8192):
        self.frames_submitted = 0
        self.frames_accepted = 0
        self.frames_rejected = 0
        self.frames_deduplicated = 0
        self.frames_throttled = 0
        self.throttle_seconds = 0.0
        self.malformed_frames = 0
        self.sequence_gaps = 0
        self.users_accepted = 0
        self.bytes_received = 0
        self.compactions = 0
        self.queue_high_watermark = 0
        self.connections_opened = 0
        self.connections_denied = 0
        self.peers_banned = 0
        self.acks_sent = 0
        self.checkpoints_written = 0
        self.last_checkpoint_bytes = 0
        self.recovery_point_lag = 0
        self.recovery_lag_high_watermark = 0
        self._latency = LatencyWindow(latency_window)

    def record_latency(self, seconds: float) -> None:
        self._latency.record(seconds)

    def latency_summary(self) -> Dict[str, float]:
        return self._latency.summary()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "frames_submitted": self.frames_submitted,
            "frames_accepted": self.frames_accepted,
            "frames_rejected": self.frames_rejected,
            "frames_deduplicated": self.frames_deduplicated,
            "frames_throttled": self.frames_throttled,
            "throttle_seconds": self.throttle_seconds,
            "malformed_frames": self.malformed_frames,
            "sequence_gaps": self.sequence_gaps,
            "users_accepted": self.users_accepted,
            "bytes_received": self.bytes_received,
            "compactions": self.compactions,
            "queue_high_watermark": self.queue_high_watermark,
            "connections_opened": self.connections_opened,
            "connections_denied": self.connections_denied,
            "peers_banned": self.peers_banned,
            "acks_sent": self.acks_sent,
            "checkpoints_written": self.checkpoints_written,
            "last_checkpoint_bytes": self.last_checkpoint_bytes,
            "recovery_point_lag": self.recovery_point_lag,
            "recovery_lag_high_watermark":
                self.recovery_lag_high_watermark,
            "latency": self.latency_summary(),
        }


class IngestionService:
    """Bounded-queue asyncio front end over a :class:`StreamingCollector`.

    Parameters
    ----------
    collector:
        The target collector. The service never touches its batch
        internals — every report goes through
        :meth:`~repro.core.StreamingCollector.ingest_report`, i.e. the
        same admission control as local observation.
    max_pending:
        Queue bound; ``submit`` awaits once this many frames are queued.
    batch_size:
        Maximum frames the consumer admits per scheduling slice before
        yielding back to the event loop (keeps socket readers live under
        a flood without interleaving overhead per frame).
    compact_every:
        Accepted-frame interval between
        :meth:`~repro.core.StreamingCollector.compact` calls; ``0``
        disables periodic compaction.
    checkpoint_every, checkpoint_dir, keep_checkpoints:
        Service-driven durability. With ``checkpoint_dir`` set, the
        consumer snapshots the collector every ``checkpoint_every``
        accepted frames (``0``: only on :meth:`stop`), writes the blob
        atomically off-loop, and prunes to the newest
        ``keep_checkpoints`` files. Numbering continues from whatever
        the directory already holds, so a restored service appends
        rather than overwrites.
    limits:
        Optional :class:`~repro.service.admission.PeerLimits` enabling
        per-peer admission control on socket connections.
    peer_seqs:
        Per-client admitted-sequence watermarks to resume duplicate
        suppression from — pass the ``extra["peer_seqs"]`` document of
        the checkpoint the collector was restored from.
    max_peers:
        Bound on tracked per-peer state (watermarks and admission),
        evicting least-recently-active entries.
    peer_key:
        Maps a socket peername tuple to the admission-control peer key;
        defaults to the remote host. Injectable so tests (where every
        connection shares 127.0.0.1) can separate logical peers, and so
        deployments behind a proxy can key on whatever identity the
        proxy forwards.
    clock:
        Injectable monotonic clock for admission control (tests).
    """

    def __init__(self, collector: StreamingCollector, *,
                 max_pending: int = 1024, batch_size: int = 256,
                 compact_every: int = 512,
                 latency_window: int = 8192,
                 checkpoint_every: int = 0,
                 checkpoint_dir: Optional[Union[str, Path]] = None,
                 keep_checkpoints: int = 3,
                 limits: Optional[PeerLimits] = None,
                 peer_seqs: Optional[Dict[str, int]] = None,
                 max_peers: int = 4096,
                 peer_key: Optional[Callable[[Any], str]] = None,
                 clock: Callable[[], float] = time.monotonic):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if compact_every < 0:
            raise ValueError(
                f"compact_every must be >= 0, got {compact_every}")
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}")
        if checkpoint_every and checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        if keep_checkpoints < 1:
            raise ValueError(
                f"keep_checkpoints must be >= 1, got {keep_checkpoints}")
        if max_peers < 1:
            raise ValueError(f"max_peers must be >= 1, got {max_peers}")
        self.collector = collector
        self.max_pending = max_pending
        self.batch_size = batch_size
        self.compact_every = compact_every
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = (Path(checkpoint_dir)
                               if checkpoint_dir is not None else None)
        self.keep_checkpoints = keep_checkpoints
        self.stats = ServiceStats(latency_window=latency_window)
        self.admission = (PeerAdmission(limits, clock=clock,
                                        max_peers=max_peers)
                          if limits is not None else None)
        self._plans = {tuple(p.key): p for p in collector.plans}
        self._peer_key = peer_key
        self._max_peers = max_peers
        self._queue: Optional[asyncio.Queue] = None
        self._consumer: Optional[asyncio.Task] = None
        self._failure: Optional[BaseException] = None
        self._since_compact = 0
        # --- session state: admitted vs durable watermarks per client
        self._peer_seqs: Dict[str, int] = (
            {str(k): int(v) for k, v in peer_seqs.items()}
            if peer_seqs else {})
        # a restored watermark came off disk, so it is durable already
        self._durable_seqs: Dict[str, int] = dict(self._peer_seqs)
        # --- checkpoint state
        self._checkpointing = self.checkpoint_dir is not None
        self._since_checkpoint = 0
        self._users_at_durable = 0
        self._frames_at_durable = 0
        self._ckpt_task: Optional[asyncio.Task] = None
        if self._checkpointing:
            existing = list_checkpoints(self.checkpoint_dir)
            self._ckpt_index = (checkpoint_index(existing[-1]) + 1
                                if existing else 0)
        else:
            self._ckpt_index = 0
        # --- socket front-end state
        self._servers: List[asyncio.AbstractServer] = []
        self._connections: set = set()
        self._handlers: set = set()
        self._frames_served = 0

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> "IngestionService":
        if self._consumer is not None:
            raise RuntimeError("service already started")
        self._failure = None
        self._queue = asyncio.Queue(maxsize=self.max_pending)
        self._consumer = asyncio.create_task(self._run())
        return self

    async def stop(self) -> None:
        """Graceful shutdown: drain everything, snapshot, surface failure.

        Closes any :meth:`serve`-started listeners, unblocks in-flight
        connection handlers and waits for them, drains the queue through
        the consumer (including frames that race in behind the stop
        sentinel), finishes any in-flight checkpoint write plus a final
        snapshot covering every accepted frame, and re-raises the
        captured failure if the consumer met one. Idempotent: a second
        call on a stopped service is a no-op.
        """
        if self._consumer is None:
            return
        await self._close_servers()
        for conn in list(self._connections):
            conn.close()
        if self._handlers:
            await asyncio.gather(*list(self._handlers),
                                 return_exceptions=True)
        queue = self._queue
        await queue.put(_STOP)
        try:
            await self._consumer
        finally:
            self._consumer = None
            self._queue = None
        # Stragglers: a submitter that was blocked on a full queue may
        # complete its put() between the consumer's final sweep and
        # here; nothing may be lost on a graceful stop.
        while True:
            try:
                entry = queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if entry is not _STOP:
                self._process(entry)
        if self._ckpt_task is not None:
            await self._ckpt_task
            self._ckpt_task = None
        if self._checkpointing and self._failure is None and \
                self.stats.frames_accepted != self._frames_at_durable:
            self._final_checkpoint()
        if self._failure is not None:
            raise self._failure

    async def abort(self) -> None:
        """Crash-stop: tear down without draining or snapshotting.

        Chaos harnesses use this to simulate a hard kill: queued frames
        and un-checkpointed collector state are simply gone, exactly as
        after ``kill -9``. Recovery is the real path — restore a fresh
        collector from the latest on-disk checkpoint and let session
        clients replay past the durable watermark.
        """
        await self._close_servers()
        for conn in list(self._connections):
            conn.close()
        doomed = [t for t in (self._consumer, self._ckpt_task)
                  if t is not None]
        doomed.extend(self._handlers)
        for task in doomed:
            task.cancel()
        if doomed:
            await asyncio.gather(*doomed, return_exceptions=True)
        self._consumer = None
        self._queue = None
        self._ckpt_task = None

    async def __aenter__(self) -> "IngestionService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        # Suppress nothing; a strict-mode failure surfaces unless the
        # body is already unwinding with its own exception.
        if exc_type is None:
            await self.stop()
        else:
            try:
                await self.stop()
            except Exception:
                pass

    async def _close_servers(self) -> None:
        servers, self._servers = self._servers, []
        for server in servers:
            server.close()
        for server in servers:
            with contextlib.suppress(Exception):
                await server.wait_closed()

    # ------------------------------------------------------------------
    # submission

    async def submit(self, frame: Union[bytes, bytearray, WireFrame],
                     source: str = "wire") -> bool:
        """Enqueue one frame; awaits under backpressure.

        Accepts either encoded bytes or an already-decoded
        :class:`~repro.wire.WireFrame` (the socket handler decodes
        incrementally). Malformed bytes never reach the queue: they are
        counted against ``source`` and — matching the sanitizer contract
        — raise :class:`~repro.errors.WireError` only under ``strict``.

        Returns ``True`` when the frame was enqueued.
        """
        if self._queue is None:
            raise RuntimeError("service is not running; call start()")
        if self._failure is not None:
            raise self._failure
        submitted_at = time.monotonic()
        if not isinstance(frame, WireFrame):
            nbytes = len(frame)
            try:
                frame = decode_frame(bytes(frame))
            except WireError as exc:
                self._reject_malformed(nbytes, str(exc), source)
                if self.collector.ingest_policy.mode == "strict":
                    raise
                return False
        await self._submit_entry(frame, source, submitted_at=submitted_at)
        return True

    async def _submit_entry(self, frame: WireFrame, source: str, *,
                            peer: Optional[str] = None,
                            client_id: Optional[str] = None,
                            seq: int = 0,
                            ack: Optional[Callable[[int], None]] = None,
                            wire_nbytes: Optional[int] = None,
                            submitted_at: Optional[float] = None) -> None:
        if self._queue is None:
            raise RuntimeError("service is not running; call start()")
        if self._failure is not None:
            raise self._failure
        self.stats.frames_submitted += 1
        self.stats.bytes_received += (frame.nbytes if wire_nbytes is None
                                      else wire_nbytes)
        await self._queue.put(_Pending(
            frame, source, peer, client_id, seq, ack,
            time.monotonic() if submitted_at is None else submitted_at))
        self.stats.queue_high_watermark = max(
            self.stats.queue_high_watermark, self._queue.qsize())

    def _reject_malformed(self, nbytes: int, detail: str, source: str, *,
                          peer: Optional[str] = None,
                          submitted: bool = True) -> None:
        # ``submitted=False`` is the socket path: undecodable stream
        # garbage was never submitted as a frame, so it must not inflate
        # frames_submitted — but its actual byte cost is still charged.
        if submitted:
            self.stats.frames_submitted += 1
        self.stats.malformed_frames += 1
        self.stats.bytes_received += nbytes
        self.collector.ingest_stats.record_reject(
            "malformed-frame", 0, self.collector.ingest_policy,
            detail=detail, source=source)
        self._record_peer_rejection(peer)

    def _record_peer_rejection(self, peer: Optional[str]) -> None:
        if self.admission is not None and peer is not None:
            if self.admission.record_rejection(peer):
                self.stats.peers_banned += 1

    # ------------------------------------------------------------------
    # consumer

    async def _run(self) -> None:
        stopping = False
        while not stopping:
            item = await self._queue.get()
            batch = [item]
            # Greedily drain what is already queued, up to batch_size,
            # then process synchronously — one loop iteration per batch,
            # not per frame.
            while len(batch) < self.batch_size:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            for entry in batch:
                if entry is _STOP:
                    stopping = True
                    continue
                self._process(entry)
            if not stopping:
                self._maybe_checkpoint()
            await asyncio.sleep(0)  # yield so submitters make progress
        # Final sweep: frames that were already queued behind the stop
        # sentinel (or raced in while this batch was processing).
        while True:
            try:
                entry = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if entry is not _STOP:
                self._process(entry)

    def _process(self, entry: _Pending) -> None:
        """Admit one entry; the consumer survives whatever it raises.

        Submitters *await* this consumer, so an escaped exception would
        not just lose frames — it would leave the queue full forever and
        every ``submit()`` awaiting a drain that never comes. Expected
        admission failures (strict-mode :class:`IngestError` /
        :class:`WireError`) and surprises alike are captured as the
        service failure; the loop keeps draining (counting latency, so
        backpressure stays honest) and the failure surfaces from
        :meth:`stop` and every subsequent :meth:`submit`.
        """
        try:
            if self._failure is None:
                self._admit_entry(entry)
        except Exception as exc:  # noqa: BLE001 — see docstring
            self._failure = exc
        finally:
            self.stats.record_latency(
                time.monotonic() - entry.submitted_at)

    def _admit_entry(self, entry: _Pending) -> None:
        if entry.client_id is not None and \
                entry.seq <= self._peer_seqs.get(entry.client_id, 0):
            # Already admitted (a replay across a reconnect, or the same
            # frame queued twice by overlapping connections): count it,
            # ack it so the client stops resending, and drop it. This
            # check lives here — not in the socket handler — so the
            # watermark is updated in the same thread of control as the
            # collector mutation it witnesses, and a checkpoint snapshots
            # the two in perfect sync.
            self.stats.frames_deduplicated += 1
            if entry.ack is not None:
                entry.ack(entry.seq)
            return
        self._admit(entry.frame, entry.source, entry.peer)
        if entry.client_id is not None:
            self._note_seq(entry.client_id, entry.seq)
            if entry.ack is not None:
                entry.ack(entry.seq)

    def _admit(self, frame: WireFrame, source: str,
               peer: Optional[str] = None) -> None:
        """Pin-check one decoded frame, then hand it to the collector."""
        mismatch = self._pin_mismatch(frame)
        if mismatch is not None:
            reason, detail = mismatch
            self.stats.frames_rejected += 1
            users = report_user_count(frame.report)
            self.collector.ingest_stats.record_reject(
                reason, users, self.collector.ingest_policy,
                detail=detail, source=source)
            self._record_peer_rejection(peer)
            if self.collector.ingest_policy.mode == "strict":
                raise IngestError(
                    f"wire frame from {source} rejected ({reason}): "
                    f"{detail}")
            return
        observed_before = self.collector.observed
        accepted = self.collector.ingest_report(frame.key, frame.report,
                                                source=source)
        if accepted:
            self.stats.frames_accepted += 1
            self.stats.users_accepted += (self.collector.observed
                                          - observed_before)
            self._since_compact += 1
            self._since_checkpoint += 1
            if self._checkpointing:
                lag = self.stats.users_accepted - self._users_at_durable
                self.stats.recovery_point_lag = lag
                if lag > self.stats.recovery_lag_high_watermark:
                    self.stats.recovery_lag_high_watermark = lag
            if self.compact_every and \
                    self._since_compact >= self.compact_every:
                self.collector.compact()
                self.stats.compactions += 1
                self._since_compact = 0
        else:
            self.stats.frames_rejected += 1
            self._record_peer_rejection(peer)

    def _note_seq(self, client_id: str, seq: int) -> None:
        seqs = self._peer_seqs
        if client_id in seqs:
            del seqs[client_id]  # re-insert: most recently active last
        elif len(seqs) >= self._max_peers:
            seqs.pop(next(iter(seqs)))
        seqs[client_id] = seq

    def _pin_mismatch(self,
                      frame: WireFrame) -> Optional[Tuple[str, str]]:
        """Check the frame's header pin against the collector's plan.

        The pin describes the *collection slot* the frame claims —
        protocol, epsilon, cell count, grid key — and is validated here,
        before the report's own declared parameters ever reach a
        sanitizer. Returns ``(reason, detail)`` on mismatch.
        """
        plan = self._plans.get(frame.key)
        if plan is None:
            return ("unknown-grid",
                    f"no planned grid with key {frame.key}")
        if frame.protocol != plan.protocol:
            return ("pin-protocol-mismatch",
                    f"frame claims {frame.protocol!r}, grid {frame.key} "
                    f"runs {plan.protocol!r}")
        if frame.num_cells != plan.num_cells:
            return ("pin-cells-mismatch",
                    f"frame claims {frame.num_cells} cells, grid "
                    f"{frame.key} has {plan.num_cells}")
        # Exact comparison on purpose: honest senders echo the f64 the
        # aggregator published, so any difference is a forged budget.
        if frame.epsilon != self.collector.config.epsilon:
            return ("pin-epsilon-mismatch",
                    f"frame claims epsilon={frame.epsilon!r}, collection "
                    f"runs epsilon={self.collector.config.epsilon!r}")
        return None

    # ------------------------------------------------------------------
    # checkpoints

    def _maybe_checkpoint(self) -> None:
        if (self._failure is None and self._checkpointing
                and self.checkpoint_every
                and self._since_checkpoint >= self.checkpoint_every
                and (self._ckpt_task is None or self._ckpt_task.done())):
            self._begin_checkpoint()

    def _checkpoint_extra(self) -> Dict[str, Any]:
        return {"peer_seqs": dict(self._peer_seqs)}

    def _begin_checkpoint(self) -> None:
        """Snapshot now, flush to disk off the consumer loop.

        ``save_checkpoint`` runs synchronously here in the consumer —
        after compaction it is O(grids), not O(frames) — so the blob is
        a consistent cut of collector state and session watermarks. The
        expensive part (fsync) happens in a worker thread while the
        consumer keeps admitting.
        """
        blob = save_checkpoint(self.collector,
                               extra=self._checkpoint_extra())
        cut = _Durable(dict(self._peer_seqs), self.stats.users_accepted,
                       self.stats.frames_accepted)
        path = checkpoint_path(self.checkpoint_dir, self._ckpt_index)
        self._ckpt_index += 1
        self._since_checkpoint = 0
        self._ckpt_task = asyncio.create_task(
            self._flush_checkpoint(path, blob, cut))

    async def _flush_checkpoint(self, path: Path, blob: bytes,
                                cut: _Durable) -> None:
        try:
            await asyncio.to_thread(write_checkpoint_file, path, blob)
            await asyncio.to_thread(prune_checkpoints,
                                    self.checkpoint_dir,
                                    self.keep_checkpoints)
            self._note_durable(blob, cut)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — broken disk is fatal
            # Durability failing silently would let clients discard
            # frames the service can no longer recover; surface it the
            # same way consumer failures surface.
            self._failure = exc

    def _note_durable(self, blob: bytes, cut: _Durable) -> None:
        self._durable_seqs = cut.peer_seqs
        self._users_at_durable = cut.users_accepted
        self._frames_at_durable = cut.frames_accepted
        self.stats.checkpoints_written += 1
        self.stats.last_checkpoint_bytes = len(blob)
        self.stats.recovery_point_lag = (self.stats.users_accepted
                                         - cut.users_accepted)

    def _final_checkpoint(self) -> None:
        try:
            blob = save_checkpoint(self.collector,
                                   extra=self._checkpoint_extra())
            path = checkpoint_path(self.checkpoint_dir, self._ckpt_index)
            self._ckpt_index += 1
            write_checkpoint_file(path, blob)
            prune_checkpoints(self.checkpoint_dir, self.keep_checkpoints)
            self._note_durable(blob, _Durable(
                dict(self._peer_seqs), self.stats.users_accepted,
                self.stats.frames_accepted))
        except Exception as exc:  # noqa: BLE001
            self._failure = exc

    def _durable_for(self, client_id: str, seq: int) -> int:
        """The durable watermark to advertise alongside ``seq``.

        Without checkpointing there is nothing more durable than the
        collector's memory, so the admitted sequence *is* the durable
        one and clients may free frames as they are acked.
        """
        if not self._checkpointing:
            return seq
        return min(seq, self._durable_seqs.get(client_id, 0))

    # ------------------------------------------------------------------
    # socket front end

    async def serve(self, host: str = "127.0.0.1", port: int = 0, *,
                    fault_injector: Optional[NetworkFaultInjector] = None
                    ) -> "asyncio.AbstractServer":
        """Listen for frame streams; returns the started server.

        Each connection speaks whichever protocol its first bytes
        announce: a raw ``FLW1`` frame stream, or a sequenced session
        opened by a ``FELIP-SESSION`` hello. Either way the connection
        gets its own decoder and a ``peer=host:port`` source label, so
        quarantine entries name the misbehaving sender. A structurally
        invalid stream (garbage between frames) cannot be
        resynchronized, so the connection is dropped after the rejection
        is recorded — with the undecodable bytes charged, not zero.

        ``fault_injector`` (a
        :class:`~repro.robustness.NetworkFaultInjector`) makes the
        server drop connections after deterministic accepted-frame
        counts — the server half of a chaos script.

        The server is tracked: :meth:`stop` closes it and waits for
        in-flight handlers before draining.
        """
        server = await asyncio.start_server(
            lambda r, w: self._handle_connection(r, w, fault_injector),
            host, port)
        self._servers.append(server)
        return server

    async def _handle_connection(
            self, reader: asyncio.StreamReader,
            writer: asyncio.StreamWriter,
            fault_injector: Optional[NetworkFaultInjector] = None) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._connections.add(writer)
        peername = writer.get_extra_info("peername")
        has_addr = isinstance(peername, tuple) and len(peername) >= 2
        if self._peer_key is not None:
            host = str(self._peer_key(peername))
        else:
            host = str(peername[0]) if has_addr else "?"
        source = (f"peer={peername[0]}:{peername[1]}" if has_addr
                  else "peer=?")
        admitted_conn = False
        try:
            if self.admission is not None:
                refusal = self.admission.connect(host)
                if refusal is not None:
                    self.stats.connections_denied += 1
                    writer.write(refusal_line(refusal))
                    with contextlib.suppress(ConnectionError, OSError):
                        await writer.drain()
                    return
                admitted_conn = True
            self.stats.connections_opened += 1
            head = b""
            while len(head) < 4:
                chunk = await reader.read(4 - len(head))
                if not chunk:
                    break
                head += chunk
            if not head:
                return
            if head.startswith(HELLO_PREFIX[:4]):
                await self._serve_session(reader, writer, head, host,
                                          source, fault_injector)
            else:
                await self._serve_legacy(reader, writer, head, host,
                                         source, fault_injector)
        except (IngestError, WireError):
            pass  # strict-mode failure; surfaces via stop()
        except (ConnectionError, OSError):
            pass  # peer vanished mid-read/write
        except asyncio.CancelledError:
            # abort() crash-stops the handler; exiting cleanly keeps the
            # asyncio.streams done-callback from logging the cancellation
            return
        finally:
            if admitted_conn:
                self.admission.disconnect(host)
            self._connections.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _gate_frame(self, host: str, nbytes: int) -> bool:
        """Admission-control one inbound frame; False drops the link."""
        if self.admission is None:
            return True
        if self.admission.is_banned(host):
            return False
        wait = self.admission.throttle(host, nbytes)
        if wait > 0:
            self.stats.frames_throttled += 1
            self.stats.throttle_seconds += wait
            await asyncio.sleep(wait)
        return True

    def _served_frame_disconnects(
            self,
            fault_injector: Optional[NetworkFaultInjector]) -> bool:
        index = self._frames_served
        self._frames_served += 1
        return (fault_injector is not None
                and fault_injector.server_should_disconnect(index))

    async def _serve_legacy(
            self, reader: asyncio.StreamReader,
            writer: asyncio.StreamWriter, initial: bytes, host: str,
            source: str,
            fault_injector: Optional[NetworkFaultInjector]) -> None:
        decoder = FrameDecoder()
        chunk = initial
        while chunk:
            try:
                for frame in decoder.feed(chunk):
                    if not await self._gate_frame(host, frame.nbytes):
                        return
                    await self.submit(frame, source=source)
                    if self._served_frame_disconnects(fault_injector):
                        return
            except WireError as exc:
                self._reject_malformed(decoder.pending_bytes, str(exc),
                                       source, peer=host,
                                       submitted=False)
                return
            chunk = await reader.read(1 << 16)

    async def _serve_session(
            self, reader: asyncio.StreamReader,
            writer: asyncio.StreamWriter, head: bytes, host: str,
            source: str,
            fault_injector: Optional[NetworkFaultInjector]) -> None:
        try:
            line = head + await reader.readline()
        except ValueError:  # line blew the stream's buffer limit
            self._reject_malformed(0, "oversized session hello", source,
                                   peer=host, submitted=False)
            return
        try:
            client_id = parse_hello(line)
        except WireError as exc:
            self._reject_malformed(len(line), str(exc), source,
                                   peer=host, submitted=False)
            return
        last = self._peer_seqs.get(client_id, 0)
        writer.write(session_reply(last, self._durable_for(client_id,
                                                           last)))
        await writer.drain()
        decoder = SequencedDecoder()
        expected = last + 1

        def ack(seq: int) -> None:
            self._send_ack(writer, client_id, seq)

        while True:
            chunk = await reader.read(1 << 16)
            if not chunk:
                return
            try:
                for seq, frame, nbytes in decoder.feed(chunk):
                    if seq != expected:
                        # A gap within one connection proves a frame was
                        # lost in flight, and a binary stream cannot be
                        # resynchronized mid-flow: drop the connection
                        # and let the reconnect handshake repair the
                        # window from the admitted watermark.
                        self.stats.sequence_gaps += 1
                        return
                    if not await self._gate_frame(host, nbytes):
                        return
                    await self._submit_entry(
                        frame, source, peer=host, client_id=client_id,
                        seq=seq, ack=ack, wire_nbytes=nbytes)
                    expected = seq + 1
                    if self._served_frame_disconnects(fault_injector):
                        return
            except WireError as exc:
                self._reject_malformed(decoder.pending_bytes, str(exc),
                                       source, peer=host,
                                       submitted=False)
                return

    def _send_ack(self, writer: asyncio.StreamWriter, client_id: str,
                  seq: int) -> None:
        """Best-effort ack from consumer context; a dead link is fine.

        The client treats a missing ack as reason to reconnect and
        resend, and the admission watermark dedups the resend — so ack
        delivery needs no guarantee at all, only the attempt.
        """
        if writer.is_closing():
            return
        try:
            writer.write(ack_line(seq, self._durable_for(client_id,
                                                         seq)))
        except (ConnectionError, OSError, RuntimeError):
            return
        self.stats.acks_sent += 1
