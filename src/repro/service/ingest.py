"""Asyncio ingestion front door for wire-encoded ε-LDP reports.

:class:`IngestionService` sits between the network and a
:class:`~repro.core.StreamingCollector`: producers submit encoded frames
(or stream them over a socket via :meth:`IngestionService.serve`), a
single consumer task decodes nothing — frames are decoded at submission
so malformed bytes are charged to the submitting peer — validates each
frame's :class:`~repro.robustness.ReportSpec` pin against the collector's
plan, and batches the reports through the existing sanitize→merge
admission path.

Backpressure is structural, not advisory: the pending-frame queue is a
bounded :class:`asyncio.Queue`, so ``await submit(...)`` blocks once the
consumer falls ``max_pending`` frames behind, propagating the slowdown
to the socket reader (which stops reading, which fills the kernel
buffer, which stalls the sender). Nothing is silently shed.

The service periodically calls :meth:`StreamingCollector.compact`, so a
long-lived stream holds one merged report per grid rather than one per
frame — this also keeps :mod:`repro.service.checkpoint` snapshots small.

Failure semantics follow the collector's
:class:`~repro.robustness.IngestPolicy`: under ``drop``/``quarantine``
bad frames are counted (and attributed to their source) and the stream
keeps flowing; under ``strict`` the first bad frame fails the collection
— the consumer stops, and the error re-raises from :meth:`stop` and from
any subsequent :meth:`submit`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.streaming import StreamingCollector
from repro.errors import IngestError, WireError
from repro.robustness.ingest import report_user_count
from repro.wire import FrameDecoder, WireFrame, decode_frame

__all__ = ["IngestionService", "ServiceStats"]

#: sentinel queued by stop() to terminate the consumer after a drain
_STOP = object()


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class ServiceStats:
    """Counters and latency percentiles for one ingestion service.

    Latency is measured per frame from submission to admission (queue
    wait plus sanitize/merge), over a sliding window of the most recent
    ``latency_window`` frames so a long soak reports current, not
    lifetime, percentiles.
    """

    def __init__(self, latency_window: int = 8192):
        if latency_window < 1:
            raise ValueError(
                f"latency_window must be >= 1, got {latency_window}")
        self.frames_submitted = 0
        self.frames_accepted = 0
        self.frames_rejected = 0
        self.malformed_frames = 0
        self.users_accepted = 0
        self.bytes_received = 0
        self.compactions = 0
        self.queue_high_watermark = 0
        self._window = latency_window
        self._latencies: List[float] = []
        self._cursor = 0

    def record_latency(self, seconds: float) -> None:
        if len(self._latencies) < self._window:
            self._latencies.append(seconds)
        else:  # overwrite in ring order: O(1), no deque reshuffle
            self._latencies[self._cursor] = seconds
            self._cursor = (self._cursor + 1) % self._window
        self._cursor %= self._window

    def latency_summary(self) -> Dict[str, float]:
        sample = sorted(self._latencies)
        return {
            "count": len(sample),
            "p50_ms": _percentile(sample, 0.50) * 1e3,
            "p99_ms": _percentile(sample, 0.99) * 1e3,
            "max_ms": (sample[-1] if sample else 0.0) * 1e3,
        }

    def as_dict(self) -> Dict[str, Any]:
        return {
            "frames_submitted": self.frames_submitted,
            "frames_accepted": self.frames_accepted,
            "frames_rejected": self.frames_rejected,
            "malformed_frames": self.malformed_frames,
            "users_accepted": self.users_accepted,
            "bytes_received": self.bytes_received,
            "compactions": self.compactions,
            "queue_high_watermark": self.queue_high_watermark,
            "latency": self.latency_summary(),
        }


class IngestionService:
    """Bounded-queue asyncio front end over a :class:`StreamingCollector`.

    Parameters
    ----------
    collector:
        The target collector. The service never touches its batch
        internals — every report goes through
        :meth:`~repro.core.StreamingCollector.ingest_report`, i.e. the
        same admission control as local observation.
    max_pending:
        Queue bound; ``submit`` awaits once this many frames are queued.
    batch_size:
        Maximum frames the consumer admits per scheduling slice before
        yielding back to the event loop (keeps socket readers live under
        a flood without interleaving overhead per frame).
    compact_every:
        Accepted-frame interval between
        :meth:`~repro.core.StreamingCollector.compact` calls; ``0``
        disables periodic compaction.
    """

    def __init__(self, collector: StreamingCollector, *,
                 max_pending: int = 1024, batch_size: int = 256,
                 compact_every: int = 512,
                 latency_window: int = 8192):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if compact_every < 0:
            raise ValueError(
                f"compact_every must be >= 0, got {compact_every}")
        self.collector = collector
        self.max_pending = max_pending
        self.batch_size = batch_size
        self.compact_every = compact_every
        self.stats = ServiceStats(latency_window=latency_window)
        self._plans = {tuple(p.key): p for p in collector.plans}
        self._queue: Optional[asyncio.Queue] = None
        self._consumer: Optional[asyncio.Task] = None
        self._failure: Optional[BaseException] = None
        self._since_compact = 0

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> "IngestionService":
        if self._consumer is not None:
            raise RuntimeError("service already started")
        self._queue = asyncio.Queue(maxsize=self.max_pending)
        self._consumer = asyncio.create_task(self._run())
        return self

    async def stop(self) -> None:
        """Drain the queue, stop the consumer, re-raise any strict failure."""
        if self._consumer is None:
            return
        await self._queue.put(_STOP)
        try:
            await self._consumer
        finally:
            self._consumer = None
            self._queue = None
        if self._failure is not None:
            raise self._failure

    async def __aenter__(self) -> "IngestionService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        # Suppress nothing; a strict-mode failure surfaces unless the
        # body is already unwinding with its own exception.
        if exc_type is None:
            await self.stop()
        else:
            try:
                await self.stop()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # submission

    async def submit(self, frame: Union[bytes, bytearray, WireFrame],
                     source: str = "wire") -> bool:
        """Enqueue one frame; awaits under backpressure.

        Accepts either encoded bytes or an already-decoded
        :class:`~repro.wire.WireFrame` (the socket handler decodes
        incrementally). Malformed bytes never reach the queue: they are
        counted against ``source`` and — matching the sanitizer contract
        — raise :class:`~repro.errors.WireError` only under ``strict``.

        Returns ``True`` when the frame was enqueued.
        """
        if self._queue is None:
            raise RuntimeError("service is not running; call start()")
        if self._failure is not None:
            raise self._failure
        submitted_at = time.monotonic()
        if not isinstance(frame, WireFrame):
            nbytes = len(frame)
            try:
                frame = decode_frame(bytes(frame))
            except WireError as exc:
                self._reject_malformed(nbytes, str(exc), source)
                if self.collector.ingest_policy.mode == "strict":
                    raise
                return False
        self.stats.frames_submitted += 1
        self.stats.bytes_received += frame.nbytes
        await self._queue.put((frame, source, submitted_at))
        self.stats.queue_high_watermark = max(
            self.stats.queue_high_watermark, self._queue.qsize())
        return True

    def _reject_malformed(self, nbytes: int, detail: str,
                          source: str) -> None:
        self.stats.frames_submitted += 1
        self.stats.malformed_frames += 1
        self.stats.bytes_received += nbytes
        self.collector.ingest_stats.record_reject(
            "malformed-frame", 0, self.collector.ingest_policy,
            detail=detail, source=source)

    # ------------------------------------------------------------------
    # consumer

    async def _run(self) -> None:
        stopping = False
        while not stopping:
            item = await self._queue.get()
            batch = [item]
            # Greedily drain what is already queued, up to batch_size,
            # then process synchronously — one loop iteration per batch,
            # not per frame.
            while len(batch) < self.batch_size:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            for entry in batch:
                if entry is _STOP:
                    stopping = True
                    continue
                if self._failure is not None:
                    continue  # strict mode already failed; drain only
                frame, source, submitted_at = entry
                try:
                    self._admit(frame, source)
                except (IngestError, WireError) as exc:
                    self._failure = exc
                finally:
                    self.stats.record_latency(
                        time.monotonic() - submitted_at)
            await asyncio.sleep(0)  # yield so submitters make progress

    def _admit(self, frame: WireFrame, source: str) -> None:
        """Pin-check one decoded frame, then hand it to the collector."""
        mismatch = self._pin_mismatch(frame)
        if mismatch is not None:
            reason, detail = mismatch
            self.stats.frames_rejected += 1
            users = report_user_count(frame.report)
            self.collector.ingest_stats.record_reject(
                reason, users, self.collector.ingest_policy,
                detail=detail, source=source)
            if self.collector.ingest_policy.mode == "strict":
                raise IngestError(
                    f"wire frame from {source} rejected ({reason}): "
                    f"{detail}")
            return
        observed_before = self.collector.observed
        accepted = self.collector.ingest_report(frame.key, frame.report,
                                                source=source)
        if accepted:
            self.stats.frames_accepted += 1
            self.stats.users_accepted += (self.collector.observed
                                          - observed_before)
            self._since_compact += 1
            if self.compact_every and \
                    self._since_compact >= self.compact_every:
                self.collector.compact()
                self.stats.compactions += 1
                self._since_compact = 0
        else:
            self.stats.frames_rejected += 1

    def _pin_mismatch(self,
                      frame: WireFrame) -> Optional[Tuple[str, str]]:
        """Check the frame's header pin against the collector's plan.

        The pin describes the *collection slot* the frame claims —
        protocol, epsilon, cell count, grid key — and is validated here,
        before the report's own declared parameters ever reach a
        sanitizer. Returns ``(reason, detail)`` on mismatch.
        """
        plan = self._plans.get(frame.key)
        if plan is None:
            return ("unknown-grid",
                    f"no planned grid with key {frame.key}")
        if frame.protocol != plan.protocol:
            return ("pin-protocol-mismatch",
                    f"frame claims {frame.protocol!r}, grid {frame.key} "
                    f"runs {plan.protocol!r}")
        if frame.num_cells != plan.num_cells:
            return ("pin-cells-mismatch",
                    f"frame claims {frame.num_cells} cells, grid "
                    f"{frame.key} has {plan.num_cells}")
        # Exact comparison on purpose: honest senders echo the f64 the
        # aggregator published, so any difference is a forged budget.
        if frame.epsilon != self.collector.config.epsilon:
            return ("pin-epsilon-mismatch",
                    f"frame claims epsilon={frame.epsilon!r}, collection "
                    f"runs epsilon={self.collector.config.epsilon!r}")
        return None

    # ------------------------------------------------------------------
    # socket front end

    async def serve(self, host: str = "127.0.0.1",
                    port: int = 0) -> "asyncio.AbstractServer":
        """Listen for frame streams; returns the started server.

        Each connection gets its own :class:`~repro.wire.FrameDecoder`
        and a ``peer=host:port`` source label, so quarantine entries
        name the misbehaving sender. A structurally invalid stream
        (garbage between frames) cannot be resynchronized, so the
        connection is dropped after the rejection is recorded.
        """
        return await asyncio.start_server(self._handle_connection,
                                          host, port)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        peername = writer.get_extra_info("peername")
        source = (f"peer={peername[0]}:{peername[1]}"
                  if isinstance(peername, tuple) and len(peername) >= 2
                  else "peer=?")
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await reader.read(1 << 16)
                if not chunk:
                    break
                try:
                    for frame in decoder.feed(chunk):
                        await self.submit(frame, source=source)
                except WireError as exc:
                    self._reject_malformed(0, str(exc), source)
                    break
        except (IngestError, WireError):
            pass  # strict-mode failure; surfaces via stop()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
