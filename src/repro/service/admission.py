"""Per-peer admission control: rate limits, quotas, and escalating bans.

The ingestion service's bounded queue backpressures *everyone* equally —
which is exactly the problem when one peer floods: honest senders stall
behind the flood. This module gives the service a per-peer gate in front
of the shared queue:

* **token buckets** bound each peer's frame and byte rate. A bucket that
  runs dry does not shed the frame — it returns the time the peer must
  wait, and the service sleeps *that peer's connection coroutine* for it.
  The flood slows to its budget while honest peers, whose buckets stay
  full, pass straight through.
* **connection quotas** cap how many concurrent sockets one host may
  hold, so a connection-churning client cannot exhaust handler tasks.
* **escalating bans** consume the per-peer rejection attribution the
  collector already keeps: every ``ban_after`` rejections (malformed
  bytes, forged pins, sanitizer drops) escalates the peer's ban level,
  and each ban lasts twice the previous one (capped). A banned peer's
  connections are closed and new ones refused until the ban lapses.

Determinism: the clock is injectable, all state is plain counters, and
nothing here randomizes — a chaos test can script a flood and assert the
exact ban level it produces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

__all__ = ["PeerAdmission", "PeerLimits", "TokenBucket"]


@dataclass(frozen=True)
class PeerLimits:
    """Knobs for one service's per-peer admission control.

    A value of ``0`` disables that control: the default instance admits
    everything, so the service's behavior is unchanged unless limits are
    asked for explicitly.

    Attributes
    ----------
    frames_per_second, bytes_per_second:
        Sustained per-peer rate ceilings (token-bucket refill rates).
    burst_frames, burst_bytes:
        Bucket capacities — how far a peer may briefly exceed the
        sustained rate before throttling bites.
    max_connections:
        Concurrent-socket quota per peer host.
    ban_after:
        Rejections attributed to a peer between ban escalations.
    ban_base_seconds, ban_cap_seconds:
        First ban duration and the ceiling the doubling stops at.
    """

    frames_per_second: float = 0.0
    bytes_per_second: float = 0.0
    burst_frames: float = 64.0
    burst_bytes: float = 1 << 20
    max_connections: int = 0
    ban_after: int = 0
    ban_base_seconds: float = 0.5
    ban_cap_seconds: float = 60.0

    def __post_init__(self) -> None:
        for name in ("frames_per_second", "bytes_per_second",
                     "burst_frames", "burst_bytes", "max_connections",
                     "ban_after", "ban_base_seconds", "ban_cap_seconds"):
            if getattr(self, name) < 0:
                raise ValueError(
                    f"{name} must be >= 0, got {getattr(self, name)}")
        if self.frames_per_second and self.burst_frames < 1:
            raise ValueError("burst_frames must admit at least one frame")
        if self.bytes_per_second and self.burst_bytes < 1:
            raise ValueError("burst_bytes must admit at least one byte")


class TokenBucket:
    """A deterministic token bucket that reports waits instead of dropping.

    :meth:`request` always *grants* the tokens — going into debt when the
    bucket is dry — and returns how long the caller must wait before the
    grant is honest. Debt makes consecutive over-budget requests queue
    up behind each other (FIFO per peer), which is the throttling
    behavior the service wants: a flood is serialized down to the refill
    rate rather than silently shed.
    """

    def __init__(self, rate: float, capacity: float,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._clock = clock
        self._tokens = self.capacity
        self._updated = clock()

    def request(self, amount: float = 1.0) -> float:
        """Take ``amount`` tokens; return seconds to wait (0 if covered)."""
        now = self._clock()
        self._tokens = min(self.capacity,
                           self._tokens + (now - self._updated) * self.rate)
        self._updated = now
        self._tokens -= amount
        if self._tokens >= 0:
            return 0.0
        return -self._tokens / self.rate

    @property
    def tokens(self) -> float:
        """Current balance (negative while in debt); no refill applied."""
        return self._tokens


class _PeerState:
    __slots__ = ("frames", "bytes", "connections", "rejections",
                 "ban_level", "banned_until")

    def __init__(self, limits: PeerLimits, clock):
        self.frames = (TokenBucket(limits.frames_per_second,
                                   limits.burst_frames, clock)
                       if limits.frames_per_second else None)
        self.bytes = (TokenBucket(limits.bytes_per_second,
                                  limits.burst_bytes, clock)
                      if limits.bytes_per_second else None)
        self.connections = 0
        self.rejections = 0
        self.ban_level = 0
        self.banned_until = 0.0


class PeerAdmission:
    """Tracks every peer's buckets, quota, and ban state for one service.

    Peer keys are whatever the service attributes traffic to — the remote
    host for socket connections. State is bounded: at most ``max_peers``
    peers are tracked, evicting the least recently *active* one, so a
    rotating-address adversary grows memory no faster than O(max_peers).
    (Eviction forgets an idle peer's ban level — the bound is explicit
    and documented rather than an unbounded dict.)
    """

    def __init__(self, limits: PeerLimits,
                 clock: Callable[[], float] = time.monotonic,
                 max_peers: int = 4096):
        if max_peers < 1:
            raise ValueError(f"max_peers must be >= 1, got {max_peers}")
        self.limits = limits
        self._clock = clock
        self._max_peers = max_peers
        self._peers: Dict[str, _PeerState] = {}
        self.bans_issued = 0

    def _state(self, peer: str) -> _PeerState:
        state = self._peers.get(peer)
        if state is None:
            if len(self._peers) >= self._max_peers:
                # dict preserves insertion order; re-inserting on access
                # makes the first entry the least recently active
                self._peers.pop(next(iter(self._peers)))
            state = _PeerState(self.limits, self._clock)
        else:
            del self._peers[peer]
        self._peers[peer] = state  # move to most-recent position
        return state

    # ------------------------------------------------------------------
    # connection lifecycle

    def connect(self, peer: str) -> Optional[str]:
        """Admit one new connection; returns a refusal reason or None."""
        state = self._state(peer)
        remaining = state.banned_until - self._clock()
        if remaining > 0:
            return (f"banned for {remaining:.1f}s "
                    f"(level {state.ban_level})")
        if self.limits.max_connections and \
                state.connections >= self.limits.max_connections:
            return (f"connection quota ({self.limits.max_connections}) "
                    f"exceeded")
        state.connections += 1
        return None

    def disconnect(self, peer: str) -> None:
        state = self._peers.get(peer)
        if state is not None and state.connections > 0:
            state.connections -= 1

    # ------------------------------------------------------------------
    # per-frame gates

    def throttle(self, peer: str, nbytes: int) -> float:
        """Seconds this peer must wait before its next frame is read."""
        state = self._state(peer)
        wait = 0.0
        if state.frames is not None:
            wait = max(wait, state.frames.request(1.0))
        if state.bytes is not None:
            wait = max(wait, state.bytes.request(float(nbytes)))
        return wait

    def is_banned(self, peer: str) -> bool:
        state = self._peers.get(peer)
        return (state is not None
                and state.banned_until > self._clock())

    def record_rejection(self, peer: str) -> bool:
        """Attribute one rejection; returns True when it triggers a ban."""
        if not self.limits.ban_after:
            return False
        state = self._state(peer)
        state.rejections += 1
        if state.rejections < self.limits.ban_after:
            return False
        state.rejections = 0
        state.ban_level += 1
        duration = min(
            self.limits.ban_cap_seconds,
            self.limits.ban_base_seconds * 2.0 ** (state.ban_level - 1))
        state.banned_until = self._clock() + duration
        self.bans_issued += 1
        return True

    # ------------------------------------------------------------------
    # introspection

    def as_dict(self) -> Dict[str, Any]:
        now = self._clock()
        banned = {peer: round(state.banned_until - now, 3)
                  for peer, state in self._peers.items()
                  if state.banned_until > now}
        return {
            "tracked_peers": len(self._peers),
            "bans_issued": self.bans_issued,
            "banned": banned,
            "ban_levels": {peer: state.ban_level
                           for peer, state in self._peers.items()
                           if state.ban_level},
        }

    def __repr__(self) -> str:
        d = self.as_dict()
        return (f"PeerAdmission(tracked={d['tracked_peers']}, "
                f"bans_issued={d['bans_issued']}, "
                f"banned={sorted(d['banned'])})")
