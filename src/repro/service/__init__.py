"""Deployment surface: asyncio ingestion service and checkpointing.

:class:`IngestionService` is the front door a deployed aggregator runs —
it accepts :mod:`repro.wire` frames (directly or over a socket), applies
backpressure through a bounded queue, validates every frame's header pin
against the collection plan, and feeds the surviving reports through the
:class:`~repro.core.StreamingCollector`'s sanitize→merge admission path.

:func:`save_checkpoint` / :func:`restore_checkpoint` snapshot a
collector's complete streaming state so a killed aggregator resumes
mid-collection with bit-identical final estimates.
"""

from repro.service.checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint_meta,
    restore_checkpoint,
    save_checkpoint,
)
from repro.service.ingest import IngestionService, ServiceStats

__all__ = [
    "CHECKPOINT_VERSION",
    "IngestionService",
    "ServiceStats",
    "checkpoint_meta",
    "restore_checkpoint",
    "save_checkpoint",
]
