"""Deployment surface: resilient client, ingestion service, durability.

:class:`IngestionService` is the front door a deployed aggregator runs —
it accepts :mod:`repro.wire` frames (directly or over a socket), applies
backpressure through a bounded queue, validates every frame's header pin
against the collection plan, and feeds the surviving reports through the
:class:`~repro.core.StreamingCollector`'s sanitize→merge admission path.
Socket peers are subject to optional per-peer admission control
(:class:`PeerLimits` / :class:`PeerAdmission`): token-bucket rate
limits, connection quotas, and escalating bans fed by the collector's
per-peer rejection attribution.

:class:`WireClient` is the matching producer: a reconnecting sequenced
session that retains frames until the service reports them durable, so
delivery is effectively exactly-once across connection chaos and even
across a service crash restored from its latest checkpoint.

:func:`save_checkpoint` / :func:`restore_checkpoint` snapshot a
collector's complete streaming state so a killed aggregator resumes
mid-collection with bit-identical final estimates; with
``checkpoint_dir`` set, the service writes those snapshots itself —
atomically, off the consumer loop, pruned to the newest few — and
reports the recovery-point lag a crash would cost.
"""

from repro.service.admission import PeerAdmission, PeerLimits, TokenBucket
from repro.service.checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint_index,
    checkpoint_meta,
    checkpoint_path,
    latest_checkpoint,
    list_checkpoints,
    prune_checkpoints,
    restore_checkpoint,
    save_checkpoint,
    write_checkpoint_file,
)
from repro.service.client import ClientStats, WireClient
from repro.service.ingest import IngestionService, LatencyWindow, ServiceStats

__all__ = [
    "CHECKPOINT_VERSION",
    "ClientStats",
    "IngestionService",
    "LatencyWindow",
    "PeerAdmission",
    "PeerLimits",
    "ServiceStats",
    "TokenBucket",
    "WireClient",
    "checkpoint_index",
    "checkpoint_meta",
    "checkpoint_path",
    "latest_checkpoint",
    "list_checkpoints",
    "prune_checkpoints",
    "restore_checkpoint",
    "save_checkpoint",
    "write_checkpoint_file",
]
