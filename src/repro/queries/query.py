"""Conjunctive multidimensional queries and their exact evaluation."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import QueryError
from repro.queries.predicate import Predicate
from repro.schema import Schema


class Query:
    """A λ-dimensional conjunction of predicates (paper, Section 4).

    The answer of a query is the *fraction* of records satisfying every
    predicate (counts divided by ``n``), matching the paper's
    ``f_q = |{v_i : ...}| / n``.
    """

    def __init__(self, predicates: Iterable[Predicate]):
        predicates = list(predicates)
        if not predicates:
            raise QueryError("query needs at least one predicate")
        names = [p.attribute for p in predicates]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise QueryError(
                f"multiple predicates on the same attribute(s): {dupes}"
            )
        self._predicates: Tuple[Predicate, ...] = tuple(predicates)
        self._by_attr: Dict[str, Predicate] = {p.attribute: p
                                               for p in predicates}

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._predicates)

    def __iter__(self) -> Iterator[Predicate]:
        return iter(self._predicates)

    def __str__(self) -> str:
        return " AND ".join(str(p) for p in self._predicates)

    def __repr__(self) -> str:
        return f"Query({self})"

    # -- accessors -----------------------------------------------------------

    @property
    def dimension(self) -> int:
        """λ: the number of constrained attributes."""
        return len(self._predicates)

    @property
    def attributes(self) -> List[str]:
        """Names of the constrained attributes, in predicate order."""
        return [p.attribute for p in self._predicates]

    def predicate_on(self, attribute: str) -> Predicate:
        """The predicate constraining ``attribute``."""
        try:
            return self._by_attr[attribute]
        except KeyError:
            raise QueryError(
                f"query has no predicate on {attribute!r}"
            ) from None

    def constrains(self, attribute: str) -> bool:
        return attribute in self._by_attr

    # -- validation and evaluation ---------------------------------------------

    def validate_for(self, schema: Schema) -> None:
        """Check every predicate is applicable to ``schema``."""
        for pred in self._predicates:
            if pred.attribute not in schema:
                raise QueryError(
                    f"query predicate on unknown attribute "
                    f"{pred.attribute!r}"
                )
            pred.validate_for(schema[pred.attribute])

    def true_answer(self, dataset: Dataset) -> float:
        """Exact (non-private) fractional answer on ``dataset``."""
        self.validate_for(dataset.schema)
        if dataset.n == 0:
            return 0.0
        mask = np.ones(dataset.n, dtype=bool)
        for pred in self._predicates:
            mask &= pred.mask(dataset.column(pred.attribute))
            if not mask.any():
                return 0.0
        return float(mask.sum()) / dataset.n

    def selectivity(self, schema: Schema) -> float:
        """Product of per-predicate selectivities (independence prior)."""
        sel = 1.0
        for pred in self._predicates:
            sel *= pred.selectivity(schema[pred.attribute].domain_size)
        return sel

    def pairs(self) -> List[Tuple[Predicate, Predicate]]:
        """All ``C(λ, 2)`` predicate pairs, for 2-D decomposition."""
        preds = self._predicates
        return [(preds[i], preds[j])
                for i in range(len(preds)) for j in range(i + 1, len(preds))]


def true_answers(queries: Iterable[Query], dataset: Dataset) -> np.ndarray:
    """Vector of exact answers for a workload."""
    return np.array([q.true_answer(dataset) for q in queries])
