"""Predicates: the atoms of FELIP's multidimensional queries.

A predicate constrains one attribute (paper, Section 4):

* ``BETWEEN`` — an inclusive code range ``[lo, hi]`` on a numerical
  attribute;
* ``IN`` — a set of codes on a categorical attribute;
* ``=`` — a single code (normalized to a one-element ``IN`` for categorical
  attributes and a width-one ``BETWEEN`` for numerical ones).

All predicates operate on integer codes; translate labels/real values through
the schema before building predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Tuple

import numpy as np

from repro.errors import QueryError
from repro.schema import Attribute


@dataclass(frozen=True)
class Predicate:
    """A constraint on a single attribute.

    Exactly one of ``interval`` (numerical ``BETWEEN``) or ``members``
    (categorical ``IN``) is set. Use the :func:`between`, :func:`isin` and
    :func:`equals` constructors instead of instantiating directly.
    """

    attribute: str
    interval: Optional[Tuple[int, int]] = None
    members: Optional[FrozenSet[int]] = None

    def __post_init__(self) -> None:
        has_interval = self.interval is not None
        has_members = self.members is not None
        if has_interval == has_members:
            raise QueryError(
                "predicate needs exactly one of interval or members"
            )
        if has_interval:
            lo, hi = self.interval
            if lo > hi:
                raise QueryError(
                    f"predicate on {self.attribute!r}: empty interval "
                    f"[{lo}, {hi}]"
                )
            if lo < 0:
                raise QueryError(
                    f"predicate on {self.attribute!r}: negative bound {lo}"
                )
        else:
            if not self.members:
                raise QueryError(
                    f"predicate on {self.attribute!r}: empty member set"
                )
            if min(self.members) < 0:
                raise QueryError(
                    f"predicate on {self.attribute!r}: negative member"
                )

    @property
    def is_range(self) -> bool:
        """True for ``BETWEEN`` predicates."""
        return self.interval is not None

    def validate_for(self, attr: Attribute) -> None:
        """Check the predicate is applicable to ``attr``; raise otherwise."""
        if attr.name != self.attribute:
            raise QueryError(
                f"predicate targets {self.attribute!r}, attribute is "
                f"{attr.name!r}"
            )
        if self.is_range:
            if not attr.is_numerical:
                raise QueryError(
                    f"BETWEEN predicate on categorical attribute "
                    f"{attr.name!r}"
                )
            if self.interval[1] >= attr.domain_size:
                raise QueryError(
                    f"predicate on {attr.name!r}: interval {self.interval} "
                    f"exceeds domain [0, {attr.domain_size})"
                )
        else:
            if max(self.members) >= attr.domain_size:
                raise QueryError(
                    f"predicate on {attr.name!r}: member "
                    f"{max(self.members)} exceeds domain "
                    f"[0, {attr.domain_size})"
                )

    def mask(self, codes: np.ndarray) -> np.ndarray:
        """Boolean satisfaction mask over a vector of attribute codes."""
        if self.is_range:
            lo, hi = self.interval
            return (codes >= lo) & (codes <= hi)
        return np.isin(codes, np.fromiter(self.members, dtype=np.int64))

    def selectivity(self, domain_size: int) -> float:
        """Fraction of the domain the predicate admits (uniform prior)."""
        if self.is_range:
            lo, hi = self.interval
            return (min(hi, domain_size - 1) - lo + 1) / domain_size
        return len(self.members) / domain_size

    def indicator(self, domain_size: int) -> np.ndarray:
        """0/1 vector over the attribute domain, 1 where admitted."""
        out = np.zeros(domain_size, dtype=np.float64)
        if self.is_range:
            lo, hi = self.interval
            out[lo:min(hi, domain_size - 1) + 1] = 1.0
        else:
            out[np.fromiter(self.members, dtype=np.int64)] = 1.0
        return out

    def __str__(self) -> str:
        if self.is_range:
            return f"{self.attribute} BETWEEN {self.interval[0]} " \
                   f"AND {self.interval[1]}"
        vals = ", ".join(str(v) for v in sorted(self.members))
        return f"{self.attribute} IN ({vals})"


def between(attribute: str, lo: int, hi: int) -> Predicate:
    """``attribute BETWEEN lo AND hi`` (inclusive, on integer codes)."""
    return Predicate(attribute=attribute, interval=(int(lo), int(hi)))


def isin(attribute: str, members: Sequence[int]) -> Predicate:
    """``attribute IN members`` (on integer codes)."""
    return Predicate(attribute=attribute,
                     members=frozenset(int(m) for m in members))


def equals(attribute: str, value: int, numerical: bool = False) -> Predicate:
    """``attribute = value``.

    Pass ``numerical=True`` when the attribute is numerical so the predicate
    is represented as a width-one range (which grids can answer); categorical
    equality becomes a singleton ``IN``.
    """
    if numerical:
        return between(attribute, value, value)
    return isin(attribute, [value])
