"""A minimal SQL-ish surface for counting queries.

The paper motivates FELIP with queries like::

    SELECT COUNT(*) FROM T
    WHERE Age BETWEEN 30 AND 60
      AND Education IN ('Doctorate', 'Masters')
      AND Salary <= 80000

This module parses exactly that fragment — ``SELECT COUNT(*) FROM <t>
WHERE <cond> [AND <cond>]*`` with conditions ``BETWEEN a AND b``,
``IN (v, ...)``, ``= v``, ``<= v``, ``>= v``, ``< v``, ``> v`` — into a
:class:`~repro.queries.Query` against a schema. Values are translated per
attribute kind: categorical literals through the attribute's labels,
numerical literals through the recorded real range (or taken as raw codes
when the attribute has none).

This is a convenience layer, not a SQL engine: anything outside the
fragment raises :class:`~repro.errors.QueryError` with a pointed message.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import QueryError
from repro.queries.predicate import Predicate, between, isin
from repro.queries.query import Query
from repro.schema import Attribute, Schema

_HEAD = re.compile(
    r"^\s*select\s+count\s*\(\s*\*\s*\)\s+from\s+\S+\s+where\s+(?P<where>.+?)\s*;?\s*$",
    re.IGNORECASE | re.DOTALL)
_BETWEEN = re.compile(
    r"^(?P<attr>\w+)\s+between\s+(?P<lo>\S+)\s+and\s+(?P<hi>\S+)$",
    re.IGNORECASE)
_IN = re.compile(r"^(?P<attr>\w+)\s+in\s*\((?P<body>[^)]*)\)$",
                 re.IGNORECASE)
_COMPARE = re.compile(
    r"^(?P<attr>\w+)\s*(?P<op><=|>=|=|<|>)\s*(?P<value>\S+)$")


def _split_conjuncts(where: str) -> List[str]:
    """Split on top-level AND, keeping BETWEEN's internal AND intact."""
    tokens = re.split(r"\s+and\s+", where, flags=re.IGNORECASE)
    conjuncts: List[str] = []
    pending: Optional[str] = None
    for token in tokens:
        if pending is not None:
            conjuncts.append(f"{pending} AND {token}")
            pending = None
        elif re.search(r"\bbetween\s+\S+$", token, re.IGNORECASE) or \
                re.search(r"\bbetween$", token.strip(), re.IGNORECASE):
            pending = token
        else:
            conjuncts.append(token)
    if pending is not None:
        raise QueryError(f"dangling BETWEEN in {pending!r}")
    return [c.strip() for c in conjuncts if c.strip()]


def _strip_quotes(literal: str) -> Tuple[str, bool]:
    literal = literal.strip()
    if len(literal) >= 2 and literal[0] == literal[-1] and \
            literal[0] in ("'", '"'):
        return literal[1:-1], True
    return literal, False


def _numeric_code(attr: Attribute, literal: str, round_up: bool) -> int:
    """Translate a numeric literal to a code (via the real range if any)."""
    try:
        value = float(literal)
    except ValueError:
        raise QueryError(
            f"{attr.name}: expected a number, got {literal!r}") from None
    if attr.lo is None:
        code = int(round(value))
    else:
        span = attr.hi - attr.lo
        fraction = (value - attr.lo) / span
        scaled = fraction * attr.domain_size
        # A bound like "<= 80k" must include the bucket containing 80k.
        # The 1e-9 guards against float round-off when the literal sits
        # exactly on a bucket edge (e.g. values emitted by to_sql).
        code = int(scaled + 1e-9) if not round_up else int(scaled - 1e-9)
    return max(0, min(attr.domain_size - 1, code))


def _categorical_codes(attr: Attribute, literals: List[str]) -> List[int]:
    from repro.errors import SchemaError
    codes = []
    for literal in literals:
        text, _ = _strip_quotes(literal)
        try:
            codes.append(attr.code_of(text))
        except SchemaError as exc:
            raise QueryError(str(exc)) from None
    return codes


def _parse_condition(condition: str, schema: Schema) -> Predicate:
    match = _BETWEEN.match(condition)
    if match:
        attr = _lookup(schema, match.group("attr"))
        if not attr.is_numerical:
            raise QueryError(
                f"{attr.name}: BETWEEN needs a numerical attribute")
        lo = _numeric_code(attr, match.group("lo"), round_up=False)
        hi = _numeric_code(attr, match.group("hi"), round_up=True)
        return between(attr.name, min(lo, hi), max(lo, hi))

    match = _IN.match(condition)
    if match:
        attr = _lookup(schema, match.group("attr"))
        literals = [part for part in match.group("body").split(",")
                    if part.strip()]
        if not literals:
            raise QueryError(f"{attr.name}: empty IN list")
        if attr.is_categorical:
            return isin(attr.name, _categorical_codes(attr, literals))
        codes = sorted({_numeric_code(attr, _strip_quotes(l)[0], False)
                        for l in literals})
        return isin(attr.name, codes)

    match = _COMPARE.match(condition)
    if match:
        attr = _lookup(schema, match.group("attr"))
        op = match.group("op")
        literal = match.group("value")
        if attr.is_categorical:
            if op != "=":
                raise QueryError(
                    f"{attr.name}: only '=' applies to categorical "
                    f"attributes, got {op!r}")
            return isin(attr.name, _categorical_codes(attr, [literal]))
        d = attr.domain_size
        if op == "=":
            code = _numeric_code(attr, literal, round_up=False)
            return between(attr.name, code, code)
        if op == "<=":
            return between(attr.name, 0,
                           _numeric_code(attr, literal, round_up=True))
        if op == "<":
            hi = _numeric_code(attr, literal, round_up=False)
            return between(attr.name, 0, max(hi - (attr.lo is None), 0))
        if op == ">=":
            return between(attr.name,
                           _numeric_code(attr, literal, round_up=False),
                           d - 1)
        # op == ">"
        lo = _numeric_code(attr, literal, round_up=True)
        return between(attr.name, min(lo + (attr.lo is None), d - 1),
                       d - 1)

    raise QueryError(
        f"cannot parse condition {condition!r}; supported forms: "
        f"'a BETWEEN x AND y', 'a IN (...)', 'a {{=,<,<=,>,>=}} x'")


def _lookup(schema: Schema, name: str) -> Attribute:
    for attr in schema:
        if attr.name.lower() == name.lower():
            return attr
    raise QueryError(
        f"unknown attribute {name!r}; schema has {schema.names}")


def to_sql(query: Query, schema: Schema, table: str = "t") -> str:
    """Render a query back into the SQL fragment this module parses.

    Inverse of :func:`parse_count_query` at the *code* level: numerical
    bounds are emitted as raw codes (attributes without a real range) or
    as bucket-boundary real values, and categorical members as quoted
    labels. ``parse_count_query(to_sql(q, schema), schema)`` reproduces
    ``q``'s predicates exactly.
    """
    query.validate_for(schema)
    conditions = []
    for predicate in query:
        attr = schema[predicate.attribute]
        if predicate.is_range:
            lo, hi = predicate.interval
            if attr.lo is None:
                conditions.append(
                    f"{attr.name} BETWEEN {lo} AND {hi}")
            else:
                width = (attr.hi - attr.lo) / attr.domain_size
                # Emit bucket edges so re-parsing maps back to [lo, hi]:
                # the lower edge of bucket lo and the upper edge of hi.
                real_lo = attr.lo + lo * width
                real_hi = attr.lo + (hi + 1) * width
                conditions.append(
                    f"{attr.name} BETWEEN {real_lo!r} AND {real_hi!r}")
        else:
            members = sorted(predicate.members)
            if attr.is_categorical:
                labels = ", ".join(f"'{attr.label_of(m)}'"
                                   for m in members)
            else:
                labels = ", ".join(str(m) for m in members)
            conditions.append(f"{attr.name} IN ({labels})")
    return (f"SELECT COUNT(*) FROM {table} WHERE "
            + " AND ".join(conditions))


def parse_count_query(sql: str, schema: Schema) -> Query:
    """Parse a ``SELECT COUNT(*) ... WHERE ...`` statement into a query.

    Example
    -------
    >>> from repro.data import ipums_like_dataset
    >>> schema = ipums_like_dataset(10, rng=0).schema
    >>> q = parse_count_query(
    ...     "SELECT COUNT(*) FROM t WHERE age BETWEEN 30 AND 60 "
    ...     "AND education_level IN ('masters', 'doctorate')", schema)
    >>> q.dimension
    2
    """
    match = _HEAD.match(sql)
    if not match:
        raise QueryError(
            "expected 'SELECT COUNT(*) FROM <t> WHERE <conditions>'")
    predicates = [_parse_condition(c, schema)
                  for c in _split_conjuncts(match.group("where"))]
    query = Query(predicates)
    query.validate_for(schema)
    return query
