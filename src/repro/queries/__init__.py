"""Query model: predicates, conjunctive queries, workload generation."""

from repro.queries.predicate import Predicate, between, equals, isin
from repro.queries.query import Query
from repro.queries.sql import parse_count_query
from repro.queries.workload import (
    WorkloadSpec,
    random_workload,
    selectivity_profile,
)

__all__ = [
    "Predicate",
    "Query",
    "between",
    "equals",
    "isin",
    "WorkloadSpec",
    "random_workload",
    "selectivity_profile",
    "parse_count_query",
]
