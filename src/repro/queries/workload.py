"""Random workload generation at a target selectivity.

The paper evaluates on ``|Q| = 10`` random λ-dimensional queries whose
numerical predicates each span a fraction ``s`` of the attribute domain
(Section 6.2). Categorical predicates draw a random subset whose size is the
closest match to the same selectivity (at least one value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import QueryError
from repro.queries.predicate import Predicate, between, isin
from repro.queries.query import Query
from repro.rng import RngLike, ensure_rng
from repro.schema import Schema


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a random workload.

    Attributes
    ----------
    num_queries:
        ``|Q|``, the number of queries.
    dimension:
        λ, the number of predicates per query.
    selectivity:
        Target per-attribute selectivity ``s`` in ``(0, 1]``.
    range_only:
        Restrict predicates to numerical attributes (the Section 6.3
        adaptive-protocol evaluation compares against TDG/HDG, which only
        support range queries).
    """

    num_queries: int = 10
    dimension: int = 2
    selectivity: float = 0.5
    range_only: bool = False

    def __post_init__(self) -> None:
        if self.num_queries < 1:
            raise QueryError("num_queries must be >= 1")
        if self.dimension < 1:
            raise QueryError("dimension must be >= 1")
        if not 0.0 < self.selectivity <= 1.0:
            raise QueryError(
                f"selectivity must be in (0, 1], got {self.selectivity}"
            )


def _random_range_predicate(name: str, domain: int, selectivity: float,
                            rng: np.random.Generator) -> Predicate:
    width = max(1, min(domain, int(round(selectivity * domain))))
    lo = int(rng.integers(0, domain - width + 1))
    return between(name, lo, lo + width - 1)


def _random_set_predicate(name: str, domain: int, selectivity: float,
                          rng: np.random.Generator) -> Predicate:
    size = max(1, min(domain, int(round(selectivity * domain))))
    members = rng.choice(domain, size=size, replace=False)
    return isin(name, members.tolist())


def selectivity_profile(queries, schema: Schema,
                        default: float = 0.5) -> dict:
    """Per-attribute average selectivity of a known workload.

    The paper's aggregator "can use the average selectivity of a set of
    queries" when sizing grids (Section 5); feed the result into
    :attr:`repro.FelipConfig.selectivity_overrides`::

        overrides = selectivity_profile(expected_queries, schema)
        config = FelipConfig(selectivity_overrides=overrides)

    Attributes never mentioned by the workload are omitted (they fall back
    to the config's global prior).
    """
    sums: dict = {}
    counts: dict = {}
    for query in queries:
        query.validate_for(schema)
        for predicate in query:
            domain = schema[predicate.attribute].domain_size
            sums[predicate.attribute] = (
                sums.get(predicate.attribute, 0.0)
                + predicate.selectivity(domain))
            counts[predicate.attribute] = \
                counts.get(predicate.attribute, 0) + 1
    return {name: sums[name] / counts[name] for name in sums}


def random_workload(schema: Schema, spec: WorkloadSpec,
                    rng: RngLike = None) -> List[Query]:
    """Draw ``spec.num_queries`` random queries against ``schema``.

    Every query constrains ``spec.dimension`` distinct attributes chosen
    uniformly (from the numerical ones only when ``spec.range_only``).
    """
    rng = ensure_rng(rng)
    if spec.range_only:
        candidate_idx = schema.numerical_indices
        if len(candidate_idx) < spec.dimension:
            raise QueryError(
                f"range-only workload of dimension {spec.dimension} needs "
                f"{spec.dimension} numerical attributes; schema has "
                f"{len(candidate_idx)}"
            )
    else:
        candidate_idx = list(range(len(schema)))
        if len(candidate_idx) < spec.dimension:
            raise QueryError(
                f"workload dimension {spec.dimension} exceeds attribute "
                f"count {len(candidate_idx)}"
            )

    queries: List[Query] = []
    for _ in range(spec.num_queries):
        chosen = rng.choice(candidate_idx, size=spec.dimension,
                            replace=False)
        predicates = []
        for t in sorted(int(c) for c in chosen):
            attr = schema[t]
            if attr.is_numerical:
                predicates.append(_random_range_predicate(
                    attr.name, attr.domain_size, spec.selectivity, rng))
            else:
                predicates.append(_random_set_predicate(
                    attr.name, attr.domain_size, spec.selectivity, rng))
        queries.append(Query(predicates))
    return queries
