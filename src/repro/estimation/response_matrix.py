"""Algorithm 3: building the response matrix via weighted update.

For an attribute pair ``(a_i, a_j)`` the response matrix ``M`` has one entry
per 2-D *value* ``(x, y)`` — finer than any grid. It is fit by iterative
proportional scaling: repeatedly, for every cell ``c`` of every related grid
(Γ = the pair's 2-D grid plus the attributes' 1-D grids when they exist),
rescale the entries in ``c``'s subdomain so their total matches the cell's
estimated mass ``f_c``. Convergence: total absolute change per sweep below
``1/n`` (paper's threshold), with a hard iteration cap as a backstop.

When both attributes are categorical the pair's 2-D grid already has one
cell per value, so ``M`` is just its matrix (the paper's special case).

Vectorized sweep
----------------
The cells of one related grid *partition* the ``d_i x d_j`` matrix into
disjoint axis-aligned rectangles (a 2-D grid tiles both axes; a 1-D grid
tiles one axis and spans the other). Because the rectangles never overlap,
applying the grid's constraints one by one touches disjoint blocks — so the
whole grid can be applied as ONE fused update: per-cell block sums via
``np.add.reduceat`` along each axis, a per-cell scale factor, and a single
elementwise multiply through the grid's precomputed row/column cell-id maps.
That turns a sweep from O(cells) Python iterations into one fused multiply
per grid, with results identical to the sequential reference (retained as
:func:`build_response_matrix_reference` and property-tested against).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConvergenceWarning, EstimationError
from repro.grids.grid import Grid1D, Grid2D, GridEstimate

#: (row_lo, row_hi_excl, col_lo, col_hi_excl, target_mass)
_Constraint = Tuple[int, int, int, int, float]


@dataclass(frozen=True)
class IPFDiagnostics:
    """Convergence accounting of one iterative-proportional-fit run.

    ``sweeps`` counts full passes executed (including the converging one);
    ``converged`` is True when the final sweep's total absolute change fell
    below ``threshold`` (``1/n``) before the ``max_iters`` cap.
    """

    sweeps: int
    converged: bool
    final_change: float
    threshold: float

    def as_dict(self) -> dict:
        return {
            "sweeps": self.sweeps,
            "converged": self.converged,
            "final_change": self.final_change,
            "threshold": self.threshold,
        }


def _warn_non_convergence(what: str, diag: IPFDiagnostics) -> None:
    if not diag.converged:
        warnings.warn(
            f"{what} did not converge in {diag.sweeps} sweeps "
            f"(last change {diag.final_change:.3e} >= threshold "
            f"{diag.threshold:.3e}); consider raising max_iters",
            ConvergenceWarning, stacklevel=3)


def _constraints_for(estimate: GridEstimate, attr_i: int, attr_j: int,
                     di: int, dj: int) -> List[_Constraint]:
    """Rectangle constraints that ``estimate`` imposes on the (i, j) matrix."""
    grid = estimate.grid
    constraints: List[_Constraint] = []
    if isinstance(grid, Grid1D):
        binning = grid.binning
        for cell in range(binning.num_cells):
            lo, hi = binning.bounds(cell)
            mass = float(estimate.frequencies[cell])
            if grid.attr_index == attr_i:
                constraints.append((lo, hi + 1, 0, dj, mass))
            elif grid.attr_index == attr_j:
                constraints.append((0, di, lo, hi + 1, mass))
            else:
                raise EstimationError(
                    f"1-D grid over attribute {grid.attr_index} unrelated "
                    f"to pair ({attr_i}, {attr_j})"
                )
        return constraints

    if not isinstance(grid, Grid2D):
        raise EstimationError(f"unsupported grid type {type(grid).__name__}")
    if grid.attr_index_x == attr_i and grid.attr_index_y == attr_j:
        bx, by, transpose = grid.binning_x, grid.binning_y, False
    elif grid.attr_index_x == attr_j and grid.attr_index_y == attr_i:
        bx, by, transpose = grid.binning_x, grid.binning_y, True
    else:
        raise EstimationError(
            f"2-D grid over {grid.key} unrelated to pair "
            f"({attr_i}, {attr_j})"
        )
    matrix = estimate.matrix()
    for cx in range(bx.num_cells):
        x_lo, x_hi = bx.bounds(cx)
        for cy in range(by.num_cells):
            y_lo, y_hi = by.bounds(cy)
            mass = float(matrix[cx, cy])
            if transpose:
                constraints.append((y_lo, y_hi + 1, x_lo, x_hi + 1, mass))
            else:
                constraints.append((x_lo, x_hi + 1, y_lo, y_hi + 1, mass))
    return constraints


class _GridPartition:
    """One related grid's constraints as a partition of the matrix.

    Precomputed once per fit: the ``reduceat`` offsets that produce the
    per-cell block sums, the flat row/column → cell-id maps that expand a
    per-cell scale array back over the matrix, and the target cell masses.
    """

    def __init__(self, row_edges: np.ndarray, col_edges: np.ndarray,
                 targets: np.ndarray):
        #: reduceat offsets along each axis (edges without the terminator)
        self.row_offsets = np.ascontiguousarray(row_edges[:-1])
        self.col_offsets = np.ascontiguousarray(col_edges[:-1])
        #: flat cell-id maps: row r of the matrix lies in x-cell row_cell[r]
        self.row_cell = np.repeat(np.arange(len(row_edges) - 1),
                                  np.diff(row_edges))
        self.col_cell = np.repeat(np.arange(len(col_edges) - 1),
                                  np.diff(col_edges))
        self.targets = np.asarray(targets, dtype=np.float64)
        widths_r = np.diff(row_edges)[:, None]
        widths_c = np.diff(col_edges)[None, :]
        #: per-cell block areas (for the zero-total repopulation rule)
        self.sizes = (widths_r * widths_c).astype(np.float64)

    @property
    def spans_all_rows(self) -> bool:
        return len(self.row_offsets) == 1

    @property
    def spans_all_cols(self) -> bool:
        return len(self.col_offsets) == 1

    def block_sums(self, m: np.ndarray) -> np.ndarray:
        """Per-cell block sums of ``m`` — one reduceat per axis."""
        sums = np.add.reduceat(m, self.row_offsets, axis=0)
        return np.add.reduceat(sums, self.col_offsets, axis=1)

    def expand(self, cells: np.ndarray) -> np.ndarray:
        """Gather a per-cell array out to the full matrix shape."""
        return cells[self.row_cell[:, None], self.col_cell]

    def apply(self, m: np.ndarray) -> float:
        """One fused weighted-update of this grid's constraints, in place.

        Returns the constraint set's contribution to the sweep change
        (``sum |target - total|`` over positive-mass cells plus the target
        mass poured into repopulated zero-mass cells) — identical to the
        sequential reference because the cells are disjoint.
        """
        sums = self.block_sums(m)
        pos = sums > 0.0
        scale = np.divide(self.targets, sums, out=np.ones_like(sums),
                          where=pos)
        change = float(np.abs(self.targets - sums)[pos].sum())
        if self.spans_all_cols:
            m *= scale[self.row_cell, :]
        elif self.spans_all_rows:
            m *= scale[:, self.col_cell]
        else:
            m *= scale[self.row_cell[:, None], self.col_cell]
        refill = (~pos) & (self.targets > 0.0)
        if refill.any():
            change += float(self.targets[refill].sum())
            per_value = np.zeros_like(sums)
            per_value[refill] = self.targets[refill] / self.sizes[refill]
            mask = self.expand(refill)
            m[mask] = self.expand(per_value)[mask]
        return change


def _partition_for(estimate: GridEstimate, attr_i: int, attr_j: int,
                   di: int, dj: int) -> _GridPartition:
    """Build the fused-sweep partition of one related grid estimate."""
    grid = estimate.grid
    full_rows = np.array([0, di], dtype=np.int64)
    full_cols = np.array([0, dj], dtype=np.int64)
    if isinstance(grid, Grid1D):
        edges = grid.binning.edges
        freqs = estimate.frequencies
        if grid.attr_index == attr_i:
            return _GridPartition(edges, full_cols, freqs[:, None])
        if grid.attr_index == attr_j:
            return _GridPartition(full_rows, edges, freqs[None, :])
        raise EstimationError(
            f"1-D grid over attribute {grid.attr_index} unrelated "
            f"to pair ({attr_i}, {attr_j})"
        )
    if not isinstance(grid, Grid2D):
        raise EstimationError(f"unsupported grid type {type(grid).__name__}")
    if grid.attr_index_x == attr_i and grid.attr_index_y == attr_j:
        return _GridPartition(grid.binning_x.edges, grid.binning_y.edges,
                              estimate.matrix())
    if grid.attr_index_x == attr_j and grid.attr_index_y == attr_i:
        return _GridPartition(grid.binning_y.edges, grid.binning_x.edges,
                              estimate.matrix().T)
    raise EstimationError(
        f"2-D grid over {grid.key} unrelated to pair "
        f"({attr_i}, {attr_j})"
    )


def _validate_fit_inputs(related: Sequence[GridEstimate], di: int, dj: int,
                         n: int, prior: Optional[np.ndarray]) -> Optional[
                             np.ndarray]:
    if not related:
        raise EstimationError("need at least one related grid estimate")
    if n < 1:
        raise EstimationError(f"n must be >= 1, got {n}")
    if prior is not None:
        prior = np.asarray(prior, dtype=np.float64)
        if prior.shape != (di, dj):
            raise EstimationError(
                f"prior shape {prior.shape} != domain shape ({di}, {dj})")
        if (prior < 0).any() or prior.sum() <= 0:
            raise EstimationError(
                "prior must be non-negative with positive total mass")
    return prior


def _initial_matrix(di: int, dj: int,
                    prior: Optional[np.ndarray]) -> np.ndarray:
    if prior is None:
        return np.full((di, dj), 1.0 / (di * dj))
    # Keep a tiny uniform floor so cells the prior zeroes out can
    # still absorb mass the collected grids put there.
    return (prior / prior.sum()) * (1.0 - 1e-6) + 1e-6 / (di * dj)


def _trivial_fast_path(related: Sequence[GridEstimate], attr_i: int,
                       attr_j: int) -> Optional[np.ndarray]:
    """The 2-D grid has one cell per value: ``M`` is just its matrix."""
    if len(related) != 1:
        return None
    grid = related[0].grid
    if (isinstance(grid, Grid2D) and grid.binning_x.is_trivial
            and grid.binning_y.is_trivial):
        matrix = related[0].matrix()
        if grid.attr_index_x == attr_i:
            return matrix.copy()
        return matrix.T.copy()
    return None


def fit_response_matrix(related: Sequence[GridEstimate], attr_i: int,
                        attr_j: int, di: int, dj: int, n: int,
                        max_iters: int = 100,
                        prior: np.ndarray = None
                        ) -> Tuple[np.ndarray, IPFDiagnostics]:
    """Fit the ``d_i x d_j`` response matrix ``M(i, j)`` (vectorized).

    Parameters
    ----------
    related:
        Γ — the pair's 2-D grid estimate plus any 1-D grid estimates of the
        two attributes (order irrelevant).
    attr_i, attr_j:
        Schema indices of the pair (``M``'s rows are ``a_i`` values).
    di, dj:
        The attributes' domain sizes.
    n:
        Population size; the convergence threshold is ``1/n``.
    max_iters:
        Backstop on the number of full sweeps.
    prior:
        Optional public-knowledge joint distribution seeding the iteration
        in place of the uniform start. The fit still matches every grid
        constraint; the prior only shapes mass *within* cells (where the
        collected data carries no signal).

    Returns
    -------
    The fitted matrix plus the sweep's :class:`IPFDiagnostics`. A
    :class:`~repro.errors.ConvergenceWarning` is emitted when the fit hits
    ``max_iters`` without meeting the ``1/n`` threshold.
    """
    prior = _validate_fit_inputs(related, di, dj, n, prior)
    threshold = 1.0 / n

    fast = _trivial_fast_path(related, attr_i, attr_j)
    if fast is not None:
        return fast, IPFDiagnostics(sweeps=0, converged=True,
                                    final_change=0.0, threshold=threshold)

    partitions = [_partition_for(estimate, attr_i, attr_j, di, dj)
                  for estimate in related]
    m = _initial_matrix(di, dj, prior)
    change = float("inf")
    sweeps = 0
    for sweeps in range(1, max_iters + 1):
        change = 0.0
        for partition in partitions:
            change += partition.apply(m)
        if change < threshold:
            break
    diag = IPFDiagnostics(sweeps=sweeps, converged=change < threshold,
                          final_change=change, threshold=threshold)
    _warn_non_convergence(
        f"response matrix for pair ({attr_i}, {attr_j})", diag)
    return m, diag


def build_response_matrix(related: Sequence[GridEstimate], attr_i: int,
                          attr_j: int, di: int, dj: int, n: int,
                          max_iters: int = 100,
                          prior: np.ndarray = None) -> np.ndarray:
    """Matrix-only convenience over :func:`fit_response_matrix`."""
    matrix, _ = fit_response_matrix(related, attr_i, attr_j, di, dj, n,
                                    max_iters=max_iters, prior=prior)
    return matrix


def build_response_matrix_reference(related: Sequence[GridEstimate],
                                    attr_i: int, attr_j: int, di: int,
                                    dj: int, n: int, max_iters: int = 100,
                                    prior: np.ndarray = None) -> np.ndarray:
    """Sequential per-constraint reference implementation of Algorithm 3.

    Retained verbatim for property tests: the vectorized fused sweep of
    :func:`fit_response_matrix` must reproduce this loop to float
    round-off, because each related grid's constraints cover disjoint
    blocks (see the module docstring).
    """
    prior = _validate_fit_inputs(related, di, dj, n, prior)
    fast = _trivial_fast_path(related, attr_i, attr_j)
    if fast is not None:
        return fast

    constraints: List[_Constraint] = []
    for estimate in related:
        constraints.extend(
            _constraints_for(estimate, attr_i, attr_j, di, dj))

    m = _initial_matrix(di, dj, prior)
    threshold = 1.0 / n
    for _ in range(max_iters):
        change = 0.0
        for row_lo, row_hi, col_lo, col_hi, target in constraints:
            block = m[row_lo:row_hi, col_lo:col_hi]
            total = block.sum()
            if total <= 0.0:
                if target > 0.0:
                    per_value = target / block.size
                    change += target
                    block[:] = per_value
                continue
            scale = target / total
            change += abs(target - total)
            block *= scale
        if change < threshold:
            break
    return m
