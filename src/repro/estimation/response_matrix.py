"""Algorithm 3: building the response matrix via weighted update.

For an attribute pair ``(a_i, a_j)`` the response matrix ``M`` has one entry
per 2-D *value* ``(x, y)`` — finer than any grid. It is fit by iterative
proportional scaling: repeatedly, for every cell ``c`` of every related grid
(Γ = the pair's 2-D grid plus the attributes' 1-D grids when they exist),
rescale the entries in ``c``'s subdomain so their total matches the cell's
estimated mass ``f_c``. Convergence: total absolute change per sweep below
``1/n`` (paper's threshold), with a hard iteration cap as a backstop.

When both attributes are categorical the pair's 2-D grid already has one
cell per value, so ``M`` is just its matrix (the paper's special case).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import EstimationError
from repro.grids.grid import Grid1D, Grid2D, GridEstimate

#: (row_lo, row_hi_excl, col_lo, col_hi_excl, target_mass)
_Constraint = Tuple[int, int, int, int, float]


def _constraints_for(estimate: GridEstimate, attr_i: int, attr_j: int,
                     di: int, dj: int) -> List[_Constraint]:
    """Rectangle constraints that ``estimate`` imposes on the (i, j) matrix."""
    grid = estimate.grid
    constraints: List[_Constraint] = []
    if isinstance(grid, Grid1D):
        binning = grid.binning
        for cell in range(binning.num_cells):
            lo, hi = binning.bounds(cell)
            mass = float(estimate.frequencies[cell])
            if grid.attr_index == attr_i:
                constraints.append((lo, hi + 1, 0, dj, mass))
            elif grid.attr_index == attr_j:
                constraints.append((0, di, lo, hi + 1, mass))
            else:
                raise EstimationError(
                    f"1-D grid over attribute {grid.attr_index} unrelated "
                    f"to pair ({attr_i}, {attr_j})"
                )
        return constraints

    if not isinstance(grid, Grid2D):
        raise EstimationError(f"unsupported grid type {type(grid).__name__}")
    if grid.attr_index_x == attr_i and grid.attr_index_y == attr_j:
        bx, by, transpose = grid.binning_x, grid.binning_y, False
    elif grid.attr_index_x == attr_j and grid.attr_index_y == attr_i:
        bx, by, transpose = grid.binning_x, grid.binning_y, True
    else:
        raise EstimationError(
            f"2-D grid over {grid.key} unrelated to pair "
            f"({attr_i}, {attr_j})"
        )
    matrix = estimate.matrix()
    for cx in range(bx.num_cells):
        x_lo, x_hi = bx.bounds(cx)
        for cy in range(by.num_cells):
            y_lo, y_hi = by.bounds(cy)
            mass = float(matrix[cx, cy])
            if transpose:
                constraints.append((y_lo, y_hi + 1, x_lo, x_hi + 1, mass))
            else:
                constraints.append((x_lo, x_hi + 1, y_lo, y_hi + 1, mass))
    return constraints


def build_response_matrix(related: Sequence[GridEstimate], attr_i: int,
                          attr_j: int, di: int, dj: int, n: int,
                          max_iters: int = 100,
                          prior: np.ndarray = None) -> np.ndarray:
    """Fit the ``d_i x d_j`` response matrix ``M(i, j)``.

    Parameters
    ----------
    related:
        Γ — the pair's 2-D grid estimate plus any 1-D grid estimates of the
        two attributes (order irrelevant).
    attr_i, attr_j:
        Schema indices of the pair (``M``'s rows are ``a_i`` values).
    di, dj:
        The attributes' domain sizes.
    n:
        Population size; the convergence threshold is ``1/n``.
    max_iters:
        Backstop on the number of full sweeps.
    prior:
        Optional public-knowledge joint distribution seeding the iteration
        in place of the uniform start. The fit still matches every grid
        constraint; the prior only shapes mass *within* cells (where the
        collected data carries no signal).
    """
    if not related:
        raise EstimationError("need at least one related grid estimate")
    if n < 1:
        raise EstimationError(f"n must be >= 1, got {n}")
    if prior is not None:
        prior = np.asarray(prior, dtype=np.float64)
        if prior.shape != (di, dj):
            raise EstimationError(
                f"prior shape {prior.shape} != domain shape ({di}, {dj})")
        if (prior < 0).any() or prior.sum() <= 0:
            raise EstimationError(
                "prior must be non-negative with positive total mass")

    # Fast path: the 2-D grid has one cell per value (cat x cat, or tiny
    # numeric domains fully resolved) and there is nothing to refine.
    if len(related) == 1:
        grid = related[0].grid
        if (isinstance(grid, Grid2D) and grid.binning_x.is_trivial
                and grid.binning_y.is_trivial):
            matrix = related[0].matrix()
            if grid.attr_index_x == attr_i:
                return matrix.copy()
            return matrix.T.copy()

    constraints: List[_Constraint] = []
    for estimate in related:
        constraints.extend(
            _constraints_for(estimate, attr_i, attr_j, di, dj))

    if prior is None:
        m = np.full((di, dj), 1.0 / (di * dj))
    else:
        # Keep a tiny uniform floor so cells the prior zeroes out can
        # still absorb mass the collected grids put there.
        m = (prior / prior.sum()) * (1.0 - 1e-6) + 1e-6 / (di * dj)
    threshold = 1.0 / n
    for _ in range(max_iters):
        change = 0.0
        for row_lo, row_hi, col_lo, col_hi, target in constraints:
            block = m[row_lo:row_hi, col_lo:col_hi]
            total = block.sum()
            if total <= 0.0:
                if target > 0.0:
                    per_value = target / block.size
                    change += target
                    block[:] = per_value
                continue
            scale = target / total
            change += abs(target - total)
            block *= scale
        if change < threshold:
            break
    return m
