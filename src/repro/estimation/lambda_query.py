"""Algorithm 4: estimating a λ-D answer from its 2-D sub-answers.

A λ-D query splits into ``C(λ, 2)`` 2-D queries. The estimator maintains a
vector ``z`` over the ``2^λ`` sign patterns (bit ``t`` set ⇔ predicate ``t``
satisfied, clear ⇔ its complement) and repeatedly rescales, for every pair
``(i, j)`` and every sign combination of that pair, the ``2^(λ−2)`` matching
entries so their total equals the pair's observed answer. The final estimate
is ``z[all bits set]``.

Unlike a positives-only update, using all four sign combinations per pair
fully constrains the pair's 2-D margin of ``z`` — this is the variant the
HDG reference implementation uses, and it converges to the maximum-entropy
distribution consistent with the pairwise answers.

Vectorized sweep
----------------
``z`` is viewed as a ``(2,) * λ`` tensor in which predicate ``t`` owns axis
``λ-1-t`` (C order). One pair's four sign constraints are then exactly the
pair's 2-D margin ``z.sum(over the other λ-2 axes)`` — the four sign blocks
are disjoint, so the whole pair applies as ONE broadcast rescale instead of
four fancy-indexed member-list updates. The same kernel runs *batched*:
stacking ``Q`` queries' ``z`` vectors into a ``(Q, 2^λ)`` array sweeps every
query simultaneously, with per-query convergence freezing so each query's
trajectory is identical to its solo run. The original per-member-list loop
is retained as :func:`estimate_lambda_query_reference` for property tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EstimationError
from repro.estimation.response_matrix import (
    IPFDiagnostics,
    _warn_non_convergence,
)


@dataclass(frozen=True)
class PairAnswers:
    """All four sign-combination answers of one 2-D sub-query.

    ``pp``: both predicates satisfied; ``pn``: first satisfied, second
    complemented; ``np_``/``nn`` analogously. The four values describe a
    complete 2x2 contingency table and should sum to ~1.
    """

    pp: float
    pn: float
    np_: float
    nn: float

    def as_table(self) -> np.ndarray:
        """2x2 table indexed ``[first_sign, second_sign]`` (1 = satisfied)."""
        return np.array([[self.nn, self.np_], [self.pn, self.pp]])


def _renormalize_tables(tables: np.ndarray, totals: np.ndarray) -> None:
    """Rescale clipped 2x2 tables back to their matrix totals, in place.

    Clipping each sign cell at 0 independently can push the table total
    above (or leave it below) the response-matrix mass it decomposes —
    the λ-D combination then chases an infeasible margin. Rescaling the
    whole table restores ``sum == total`` without reintroducing negatives.
    """
    sums = tables.sum(axis=(-2, -1))
    fix = (sums > 0.0) & (totals > 0.0) & (sums != totals)
    if np.any(fix):
        factor = np.ones_like(sums)
        factor[fix] = totals[fix] / sums[fix]
        tables *= factor[..., None, None]


def pair_answers_from_matrix(matrix: np.ndarray, indicator_i: np.ndarray,
                             indicator_j: np.ndarray) -> PairAnswers:
    """Derive the four sign answers from a response matrix.

    ``indicator_i``/``indicator_j`` are 0/1 vectors over the two attribute
    domains (from :meth:`Predicate.indicator`). Rectangle sums on the
    response matrix are exact — no uniformity assumption at this level.
    Small negative round-off is clipped, then the 2x2 table is renormalized
    so its total still equals the matrix total.
    """
    if matrix.shape != (len(indicator_i), len(indicator_j)):
        raise EstimationError(
            f"matrix shape {matrix.shape} does not match indicators "
            f"({len(indicator_i)}, {len(indicator_j)})"
        )
    table = pair_answers_tables(matrix, indicator_i[None, :],
                                indicator_j[None, :])[0]
    return PairAnswers(pp=float(table[1, 1]), pn=float(table[1, 0]),
                       np_=float(table[0, 1]), nn=float(table[0, 0]))


def pair_answers_tables(matrix: np.ndarray, indicators_i: np.ndarray,
                        indicators_j: np.ndarray) -> np.ndarray:
    """Batched :func:`pair_answers_from_matrix`: ``Q`` queries at once.

    ``indicators_i``/``indicators_j`` are ``(Q, d_i)`` / ``(Q, d_j)``
    indicator stacks; returns ``(Q, 2, 2)`` sign tables indexed
    ``[query, first_sign, second_sign]`` (1 = satisfied), clipped at 0 and
    renormalized to the matrix total.
    """
    indicators_i = np.asarray(indicators_i, dtype=np.float64)
    indicators_j = np.asarray(indicators_j, dtype=np.float64)
    if matrix.shape != (indicators_i.shape[1], indicators_j.shape[1]):
        raise EstimationError(
            f"matrix shape {matrix.shape} does not match indicator stacks "
            f"({indicators_i.shape[1]}, {indicators_j.shape[1]})"
        )
    total = float(matrix.sum())
    # einsum, not BLAS @: its fixed summation order makes the reductions
    # batch-size invariant, so a batch of one reproduces a batch of many
    # bit-for-bit (BLAS picks different gemv/gemm kernels by shape).
    row = np.einsum("qi,i->q", indicators_i, matrix.sum(axis=1),
                    optimize=False)
    col = np.einsum("qj,j->q", indicators_j, matrix.sum(axis=0),
                    optimize=False)
    pp = np.einsum("qi,ij,qj->q", indicators_i, matrix, indicators_j,
                   optimize=False)
    pn = np.maximum(row - pp, 0.0)
    np_ = np.maximum(col - pp, 0.0)
    nn = np.maximum(total - row - col + pp, 0.0)
    pp = np.maximum(pp, 0.0)
    tables = np.stack([np.stack([nn, np_], axis=-1),
                       np.stack([pn, pp], axis=-1)], axis=-2)
    _renormalize_tables(tables, np.full(len(tables), total))
    return tables


def canonical_pairs(dimension: int) -> List[Tuple[int, int]]:
    """The ``C(λ, 2)`` predicate-position pairs in lexicographic order."""
    return list(itertools.combinations(range(dimension), 2))


def _validate_pair_answers(pair_answers, dimension: int, n: int) -> None:
    if dimension < 2:
        raise EstimationError(f"dimension must be >= 2, got {dimension}")
    expected = set(canonical_pairs(dimension))
    if set(pair_answers) != expected:
        missing = sorted(expected - set(pair_answers))
        extra = sorted(set(pair_answers) - expected)
        raise EstimationError(
            f"pair answers mismatch; missing {missing}, unexpected {extra}"
        )
    if n < 1:
        raise EstimationError(f"n must be >= 1, got {n}")


def _broadcast_tables(tables: np.ndarray, pairs: Sequence[Tuple[int, int]],
                      dimension: int) -> List[np.ndarray]:
    """Reshape each pair's ``(Q, 2, 2)`` table for tensor broadcasting.

    Predicate ``t`` owns tensor axis ``1 + (λ-1-t)`` of the
    ``(Q,) + (2,)*λ`` view of ``z``; for a pair ``(i, j)`` with ``i < j``
    the ``j`` axis precedes the ``i`` axis, so the ``[si, sj]`` table is
    transposed to ``[sj, si]`` before the reshape.
    """
    q = tables.shape[0]
    out = []
    for p, (i, j) in enumerate(pairs):
        ai = 1 + (dimension - 1 - i)
        aj = 1 + (dimension - 1 - j)
        shape = [q] + [1] * dimension
        shape[aj] = 2
        shape[ai] = 2
        out.append(np.ascontiguousarray(
            tables[:, p].transpose(0, 2, 1)).reshape(shape))
    return out


def _lambda_ipf(tables: np.ndarray, pairs: Sequence[Tuple[int, int]],
                dimension: int, threshold: float, max_iters: int
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batched iterative-scaling kernel over stacked sign tables.

    Parameters
    ----------
    tables:
        ``(Q, P, 2, 2)`` sign tables, ``tables[q, p]`` indexed
        ``[si, sj]`` for ``pairs[p] = (i, j)``.
    pairs:
        Update order of the ``C(λ, 2)`` pairs within a sweep.
    threshold, max_iters:
        Per-query convergence threshold and sweep cap.

    Returns ``(z, sweeps, converged, final_change)``: ``z`` is the
    ``(Q, 2^λ)`` fitted sign-pattern distribution; the other three are
    per-query diagnostics. Converged queries are frozen — removed from the
    active batch — so every query's trajectory is exactly what a solo run
    would produce.
    """
    q = tables.shape[0]
    size = 1 << dimension
    block = 1 << (dimension - 2)  # entries per (pair, sign) constraint
    z = np.full((q, size), 1.0 / size)
    axis_sets = []
    for i, j in pairs:
        ai = 1 + (dimension - 1 - i)
        aj = 1 + (dimension - 1 - j)
        axis_sets.append(tuple(a for a in range(1, dimension + 1)
                               if a not in (ai, aj)))
    broadcast = _broadcast_tables(tables, pairs, dimension)

    sweeps = np.full(q, max_iters, dtype=np.int64)
    converged = np.zeros(q, dtype=bool)
    final_change = np.zeros(q)
    active = np.arange(q)
    for sweep in range(1, max_iters + 1):
        if active.size == 0:
            break
        z_act = z[active]
        zi = z_act.reshape((len(active),) + (2,) * dimension)
        change = np.zeros(len(active))
        for axes, table in zip(axis_sets, broadcast):
            t = table[active]
            tot = zi.sum(axis=axes, keepdims=True)
            pos = tot > 0.0
            scale = np.divide(t, tot, out=np.ones_like(tot), where=pos)
            contrib = np.where(pos, np.abs(t - tot),
                               np.where(t > 0.0, t, 0.0))
            change += contrib.reshape(len(active), -1).sum(axis=1)
            zi *= scale
            refill = (~pos) & (t > 0.0)
            if refill.any():
                zi[...] = np.where(refill, t / block, zi)
        z[active] = z_act
        final_change[active] = change
        done = change < threshold
        if done.any():
            settled = active[done]
            converged[settled] = True
            sweeps[settled] = sweep
            active = active[~done]
    return z, sweeps, converged, final_change


def fit_lambda_query(
        pair_answers: Dict[Tuple[int, int], PairAnswers],
        dimension: int, n: int, max_iters: int = 500
) -> Tuple[float, IPFDiagnostics]:
    """Combine pairwise answers into the λ-D estimate (Algorithm 4).

    Parameters
    ----------
    pair_answers:
        Answers keyed by predicate-position pairs ``(i, j)`` with
        ``0 <= i < j < dimension``; all ``C(λ, 2)`` pairs must be present.
        Pairs are applied in the dict's iteration order.
    dimension:
        λ ≥ 2.
    n:
        Population size (convergence threshold ``1/n``).
    max_iters:
        Backstop on full sweeps.

    Returns the estimate plus :class:`IPFDiagnostics`; emits a
    :class:`~repro.errors.ConvergenceWarning` when the sweep cap is hit.
    """
    _validate_pair_answers(pair_answers, dimension, n)
    pairs = list(pair_answers)
    tables = np.stack([pair_answers[p].as_table() for p in pairs])[None]
    threshold = 1.0 / n
    z, sweeps, converged, change = _lambda_ipf(tables, pairs, dimension,
                                               threshold, max_iters)
    diag = IPFDiagnostics(sweeps=int(sweeps[0]), converged=bool(converged[0]),
                          final_change=float(change[0]), threshold=threshold)
    _warn_non_convergence(f"lambda-query combination (lambda={dimension})",
                          diag)
    return float(z[0, -1]), diag


def estimate_lambda_query(
        pair_answers: Dict[Tuple[int, int], PairAnswers],
        dimension: int, n: int, max_iters: int = 500) -> float:
    """Estimate-only convenience over :func:`fit_lambda_query`."""
    estimate, _ = fit_lambda_query(pair_answers, dimension, n,
                                   max_iters=max_iters)
    return estimate


def fit_lambda_queries(
        tables: np.ndarray, dimension: int, n: int, max_iters: int = 500,
        pairs: Optional[Sequence[Tuple[int, int]]] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched Algorithm 4: many queries' sign tables in one IPF.

    Parameters
    ----------
    tables:
        ``(Q, C(λ,2), 2, 2)`` stacked sign tables (e.g. from
        :func:`pair_answers_tables`), ``tables[q, p]`` indexed
        ``[si, sj]`` for the ``p``-th pair.
    dimension:
        λ ≥ 2, shared by every query in the batch.
    n:
        Population size (convergence threshold ``1/n``).
    max_iters:
        Backstop on full sweeps per query.
    pairs:
        Pair order matching ``tables``'s second axis; defaults to
        :func:`canonical_pairs` (lexicographic).

    Returns ``(estimates, sweeps, converged)``: the ``(Q,)`` λ-D answers
    plus per-query convergence diagnostics. Each query's result is
    identical to running it alone — converged queries freeze while the
    rest keep sweeping.
    """
    if dimension < 2:
        raise EstimationError(f"dimension must be >= 2, got {dimension}")
    if n < 1:
        raise EstimationError(f"n must be >= 1, got {n}")
    if pairs is None:
        pairs = canonical_pairs(dimension)
    tables = np.asarray(tables, dtype=np.float64)
    expected = (len(pairs), 2, 2)
    if tables.ndim != 4 or tables.shape[1:] != expected:
        raise EstimationError(
            f"tables shape {tables.shape} does not match "
            f"(Q, {len(pairs)}, 2, 2)")
    if sorted(pairs) != canonical_pairs(dimension):
        raise EstimationError(
            f"pairs {sorted(pairs)} do not cover all C({dimension}, 2) "
            f"position pairs")
    z, sweeps, converged, _ = _lambda_ipf(tables, list(pairs), dimension,
                                          1.0 / n, max_iters)
    return z[:, -1].copy(), sweeps, converged


def estimate_lambda_query_reference(
        pair_answers: Dict[Tuple[int, int], PairAnswers],
        dimension: int, n: int, max_iters: int = 500) -> float:
    """Per-member-list reference implementation of Algorithm 4.

    Retained verbatim for property tests: the broadcast tensor sweep of
    :func:`fit_lambda_query` must reproduce this loop to float round-off,
    because the four sign blocks of one pair partition ``z`` (disjoint
    member sets), making the fused rescale order-equivalent.
    """
    _validate_pair_answers(pair_answers, dimension, n)

    size = 1 << dimension
    z = np.full(size, 1.0 / size)
    masks = np.arange(size)
    # Precompute, per pair and sign combination, the member index arrays
    # (fancy indexing is markedly faster than boolean masks here).
    updates = []
    for (i, j), answers in pair_answers.items():
        table = answers.as_table()
        bit_i = (masks >> i) & 1
        bit_j = (masks >> j) & 1
        for si in (0, 1):
            for sj in (0, 1):
                members = np.flatnonzero((bit_i == si) & (bit_j == sj))
                updates.append((members, float(table[si, sj])))

    threshold = 1.0 / n
    for _ in range(max_iters):
        change = 0.0
        for members, target in updates:
            block = z[members]
            total = block.sum()
            if total <= 0.0:
                if target > 0.0:
                    z[members] = target / len(members)
                    change += target
                continue
            change += abs(target - total)
            z[members] = block * (target / total)
        if change < threshold:
            break
    return float(z[size - 1])
