"""Algorithm 4: estimating a λ-D answer from its 2-D sub-answers.

A λ-D query splits into ``C(λ, 2)`` 2-D queries. The estimator maintains a
vector ``z`` over the ``2^λ`` sign patterns (bit ``t`` set ⇔ predicate ``t``
satisfied, clear ⇔ its complement) and repeatedly rescales, for every pair
``(i, j)`` and every sign combination of that pair, the ``2^(λ−2)`` matching
entries so their total equals the pair's observed answer. The final estimate
is ``z[all bits set]``.

Unlike a positives-only update, using all four sign combinations per pair
fully constrains the pair's 2-D margin of ``z`` — this is the variant the
HDG reference implementation uses, and it converges to the maximum-entropy
distribution consistent with the pairwise answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import EstimationError


@dataclass(frozen=True)
class PairAnswers:
    """All four sign-combination answers of one 2-D sub-query.

    ``pp``: both predicates satisfied; ``pn``: first satisfied, second
    complemented; ``np``/``nn`` analogously. The four values describe a
    complete 2x2 contingency table and should sum to ~1.
    """

    pp: float
    pn: float
    np_: float
    nn: float

    def as_table(self) -> np.ndarray:
        """2x2 table indexed ``[first_sign, second_sign]`` (1 = satisfied)."""
        return np.array([[self.nn, self.np_], [self.pn, self.pp]])


def pair_answers_from_matrix(matrix: np.ndarray, indicator_i: np.ndarray,
                             indicator_j: np.ndarray) -> PairAnswers:
    """Derive the four sign answers from a response matrix.

    ``indicator_i``/``indicator_j`` are 0/1 vectors over the two attribute
    domains (from :meth:`Predicate.indicator`). Rectangle sums on the
    response matrix are exact — no uniformity assumption at this level.
    Small negative round-off is clipped.
    """
    if matrix.shape != (len(indicator_i), len(indicator_j)):
        raise EstimationError(
            f"matrix shape {matrix.shape} does not match indicators "
            f"({len(indicator_i)}, {len(indicator_j)})"
        )
    total = float(matrix.sum())
    row = float(indicator_i @ matrix.sum(axis=1))
    col = float(matrix.sum(axis=0) @ indicator_j)
    pp = float(indicator_i @ matrix @ indicator_j)
    pn = max(row - pp, 0.0)
    np_ = max(col - pp, 0.0)
    nn = max(total - row - col + pp, 0.0)
    return PairAnswers(pp=max(pp, 0.0), pn=pn, np_=np_, nn=nn)


def estimate_lambda_query(
        pair_answers: Dict[Tuple[int, int], PairAnswers],
        dimension: int, n: int, max_iters: int = 500) -> float:
    """Combine pairwise answers into the λ-D estimate (Algorithm 4).

    Parameters
    ----------
    pair_answers:
        Answers keyed by predicate-position pairs ``(i, j)`` with
        ``0 <= i < j < dimension``; all ``C(λ, 2)`` pairs must be present.
    dimension:
        λ ≥ 2.
    n:
        Population size (convergence threshold ``1/n``).
    max_iters:
        Backstop on full sweeps.
    """
    if dimension < 2:
        raise EstimationError(f"dimension must be >= 2, got {dimension}")
    expected = {(i, j) for i in range(dimension)
                for j in range(i + 1, dimension)}
    if set(pair_answers) != expected:
        missing = sorted(expected - set(pair_answers))
        extra = sorted(set(pair_answers) - expected)
        raise EstimationError(
            f"pair answers mismatch; missing {missing}, unexpected {extra}"
        )
    if n < 1:
        raise EstimationError(f"n must be >= 1, got {n}")

    size = 1 << dimension
    z = np.full(size, 1.0 / size)
    masks = np.arange(size)
    # Precompute, per pair and sign combination, the member index arrays
    # (fancy indexing is markedly faster than boolean masks here).
    updates = []
    for (i, j), answers in pair_answers.items():
        table = answers.as_table()
        bit_i = (masks >> i) & 1
        bit_j = (masks >> j) & 1
        for si in (0, 1):
            for sj in (0, 1):
                members = np.flatnonzero((bit_i == si) & (bit_j == sj))
                updates.append((members, float(table[si, sj])))

    threshold = 1.0 / n
    for _ in range(max_iters):
        change = 0.0
        for members, target in updates:
            block = z[members]
            total = block.sum()
            if total <= 0.0:
                if target > 0.0:
                    z[members] = target / len(members)
                    change += target
                continue
            change += abs(target - total)
            z[members] = block * (target / total)
        if change < threshold:
            break
    return float(z[size - 1])
