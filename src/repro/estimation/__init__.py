"""Estimation algorithms: response matrices and λ-D query combination."""

from repro.estimation.response_matrix import (
    IPFDiagnostics,
    build_response_matrix,
    build_response_matrix_reference,
    fit_response_matrix,
)
from repro.estimation.lambda_query import (
    PairAnswers,
    canonical_pairs,
    estimate_lambda_query,
    estimate_lambda_query_reference,
    fit_lambda_queries,
    fit_lambda_query,
    pair_answers_from_matrix,
    pair_answers_tables,
)
from repro.estimation.engine import SummedAreaTable

__all__ = [
    "IPFDiagnostics",
    "SummedAreaTable",
    "build_response_matrix",
    "build_response_matrix_reference",
    "fit_response_matrix",
    "PairAnswers",
    "canonical_pairs",
    "pair_answers_from_matrix",
    "pair_answers_tables",
    "estimate_lambda_query",
    "estimate_lambda_query_reference",
    "fit_lambda_query",
    "fit_lambda_queries",
]
