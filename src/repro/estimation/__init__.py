"""Estimation algorithms: response matrices and λ-D query combination."""

from repro.estimation.response_matrix import build_response_matrix
from repro.estimation.lambda_query import (
    PairAnswers,
    estimate_lambda_query,
    pair_answers_from_matrix,
)

__all__ = [
    "build_response_matrix",
    "PairAnswers",
    "pair_answers_from_matrix",
    "estimate_lambda_query",
]
