"""Materialized answering structures: summed-area tables over matrices.

Once a pair's response matrix is built, every ``BETWEEN x BETWEEN``
rectangle query against it is a 2-D prefix-sum lookup: precomputing the
summed-area table (inclusion–exclusion over four corners) turns each
rectangle sum — and each full 2x2 sign table — into O(1) work regardless of
the rectangle size, and whole workloads of rectangles into four fancy-indexed
gathers. This is what :meth:`repro.core.Aggregator.materialize` caches per
pair so large range workloads never touch the O(d_i · d_j) matrix again.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import EstimationError
from repro.estimation.lambda_query import _renormalize_tables


class SummedAreaTable:
    """2-D prefix sums of a matrix with O(1) inclusive rectangle sums.

    ``sat[r, c]`` holds the sum of ``matrix[:r, :c]``, so the mass of the
    inclusive rectangle ``[r0, r1] x [c0, c1]`` is the classic four-corner
    inclusion–exclusion. All lookups are vectorized: corner arrays of shape
    ``(Q,)`` answer ``Q`` rectangles in four gathers.
    """

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise EstimationError(
                f"summed-area table needs a 2-D matrix, got shape "
                f"{matrix.shape}")
        self.shape: Tuple[int, int] = matrix.shape
        rows, cols = matrix.shape
        sat = np.zeros((rows + 1, cols + 1))
        np.cumsum(matrix, axis=0, out=sat[1:, 1:])
        np.cumsum(sat[1:, 1:], axis=1, out=sat[1:, 1:])
        self._sat = sat
        #: total matrix mass (the all-domain rectangle)
        self.total = float(sat[rows, cols])

    def _check_bounds(self, r0, r1, c0, c1) -> None:
        rows, cols = self.shape
        if (np.any(r0 < 0) or np.any(r1 >= rows) or np.any(r0 > r1)
                or np.any(c0 < 0) or np.any(c1 >= cols) or np.any(c0 > c1)):
            raise EstimationError(
                f"rectangle bounds outside matrix of shape {self.shape}")

    def rectangle(self, r0, r1, c0, c1):
        """Mass of inclusive rectangles ``[r0, r1] x [c0, c1]``.

        Bounds may be scalars or equal-length integer arrays; the return
        matches their broadcast shape.
        """
        r0 = np.asarray(r0, dtype=np.intp)
        r1 = np.asarray(r1, dtype=np.intp)
        c0 = np.asarray(c0, dtype=np.intp)
        c1 = np.asarray(c1, dtype=np.intp)
        self._check_bounds(r0, r1, c0, c1)
        s = self._sat
        return (s[r1 + 1, c1 + 1] - s[r0, c1 + 1]
                - s[r1 + 1, c0] + s[r0, c0])

    def row_band(self, r0, r1):
        """Mass of full-width row bands ``[r0, r1]`` (vectorized)."""
        return self.rectangle(r0, r1, 0, self.shape[1] - 1)

    def col_band(self, c0, c1):
        """Mass of full-height column bands ``[c0, c1]`` (vectorized)."""
        return self.rectangle(0, self.shape[0] - 1, c0, c1)

    def sign_tables(self, r0, r1, c0, c1) -> np.ndarray:
        """All four sign-cell answers of ``Q`` rectangle pairs at once.

        Returns ``(Q, 2, 2)`` tables indexed ``[query, row_sign,
        col_sign]`` (1 = inside the band) — the O(1) counterpart of
        :func:`repro.estimation.pair_answers_tables` for ``BETWEEN``
        predicates, with the same clip-then-renormalize treatment.
        """
        pp = np.atleast_1d(self.rectangle(r0, r1, c0, c1))
        row = np.atleast_1d(self.row_band(r0, r1))
        col = np.atleast_1d(self.col_band(c0, c1))
        pn = np.maximum(row - pp, 0.0)
        np_ = np.maximum(col - pp, 0.0)
        nn = np.maximum(self.total - row - col + pp, 0.0)
        pp = np.maximum(pp, 0.0)
        tables = np.stack([np.stack([nn, np_], axis=-1),
                           np.stack([pn, pp], axis=-1)], axis=-2)
        _renormalize_tables(tables, np.full(len(tables), self.total))
        return tables

    def __repr__(self) -> str:
        return f"SummedAreaTable(shape={self.shape}, total={self.total:.6f})"
