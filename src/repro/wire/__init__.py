"""The wire: a compact versioned binary codec for ε-LDP report frames.

Everything a deployed FELIP aggregator receives arrives through here: one
*frame* per report, self-describing and CRC-protected, whose header pins
exactly the :class:`~repro.robustness.ReportSpec` surface the ingestion
sanitizers check — protocol, epsilon, cell count, and target grid key —
and whose payload is the report's arrays, decoded as zero-copy numpy
views into the frame buffer.

See :mod:`repro.wire.codec` for the frame layout and versioning rules,
and :mod:`repro.service` for the asyncio front door that feeds decoded
frames into :class:`~repro.core.StreamingCollector`.
"""

from repro.wire.codec import (
    FRAME_VERSION,
    FrameDecoder,
    WireFrame,
    decode_frame,
    encode_report,
    frame_length,
)
from repro.wire.session import (
    SESSION_VERSION,
    SequencedDecoder,
    ack_line,
    encode_envelope,
    hello_line,
    parse_ack,
    parse_hello,
    parse_session_reply,
    refusal_line,
    session_reply,
)

__all__ = [
    "FRAME_VERSION",
    "FrameDecoder",
    "SESSION_VERSION",
    "SequencedDecoder",
    "WireFrame",
    "ack_line",
    "decode_frame",
    "encode_envelope",
    "encode_report",
    "frame_length",
    "hello_line",
    "parse_ack",
    "parse_hello",
    "parse_session_reply",
    "refusal_line",
    "session_reply",
]
