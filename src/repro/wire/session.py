"""Session layer over the wire codec: sequencing, hellos, and acks.

The frame codec (:mod:`repro.wire.codec`) makes a single report
self-contained and corruption-evident, but says nothing about *delivery*:
a connection that dies mid-stream leaves both ends unsure which frames
made it. This module adds the minimal session vocabulary the resilient
client/service pair speaks on top of a byte stream:

* every frame travels inside a 12-byte **envelope** — magic ``b"FSEQ"``
  plus a u64 sequence number the client assigns monotonically from 1;
* a connection opens with an ASCII **hello line**
  (``FELIP-SESSION 1 <client_id>\\n``) naming the logical sender, which
  survives reconnects — the server keys its duplicate suppression on it;
* the server answers with ``OK <last_seq> <durable_seq>\\n`` — the
  highest sequence it has *admitted* for this client and the highest it
  has made *durable* (covered by a checkpoint on disk) — and thereafter
  emits one ``ACK <seq> <durable_seq>\\n`` line per processed frame.

The split between the two watermarks is what makes crash recovery exact:
a client may stop *retransmitting* a frame once it is acked
(``seq <= last_seq``), but may only *forget* it once it is durable
(``seq <= durable_seq``), because an ack tells the client the frame
reached the collector's memory, not its checkpoint. After the server is
killed and restored, the hello reply's ``last_seq`` rewinds to the
checkpointed watermark and the client replays exactly the frames the
snapshot missed — no loss, and the server's per-client last-seen check
guarantees no double count. Sequence numbers within one connection must
be contiguous; a gap proves an in-flight frame was lost, and since a
binary stream cannot be resynchronized mid-flow the server drops the
connection and lets the handshake repair the window.

Everything here is layout and parsing; the *behavior* lives in
:class:`repro.service.client.WireClient` and
:class:`repro.service.IngestionService`.
"""

from __future__ import annotations

import re
import struct
from typing import Iterator, Tuple, Union

from repro.errors import WireError
from repro.wire.codec import WireFrame, decode_frame, frame_length

__all__ = [
    "SEQ_MAGIC",
    "SESSION_VERSION",
    "SequencedDecoder",
    "ack_line",
    "encode_envelope",
    "hello_line",
    "parse_ack",
    "parse_hello",
    "parse_session_reply",
    "refusal_line",
    "session_reply",
]

SEQ_MAGIC = b"FSEQ"
SESSION_VERSION = 1
HELLO_PREFIX = b"FELIP-SESSION"

#: envelope: magic + u64 sequence number
ENVELOPE = struct.Struct("<4sQ")

#: logical sender identities must be printable, spaceless, and bounded —
#: they end up in audit trails, ack lines, and checkpoint meta JSON
_CLIENT_ID = re.compile(r"^[A-Za-z0-9._:\-]{1,64}$")

#: ceiling on line length accepted from the peer before we call it abuse
MAX_LINE_BYTES = 256


def _validate_client_id(client_id: str) -> str:
    if not isinstance(client_id, str) or not _CLIENT_ID.match(client_id):
        raise WireError(
            f"client id {client_id!r} is not 1-64 characters of "
            f"[A-Za-z0-9._:-]")
    return client_id


def encode_envelope(seq: int, frame: bytes) -> bytes:
    """Wrap one encoded frame in its sequence envelope."""
    if seq < 1:
        raise WireError(f"sequence numbers start at 1, got {seq}")
    return ENVELOPE.pack(SEQ_MAGIC, seq) + frame


def hello_line(client_id: str) -> bytes:
    """The session-opening line a client writes after connecting."""
    return (f"FELIP-SESSION {SESSION_VERSION} "
            f"{_validate_client_id(client_id)}\n").encode("ascii")


def parse_hello(line: bytes) -> str:
    """Validate a hello line; returns the client id."""
    parts = _ascii_line(line).split()
    if len(parts) != 3 or parts[0] != "FELIP-SESSION":
        raise WireError(f"malformed session hello {line!r}")
    if parts[1] != str(SESSION_VERSION):
        raise WireError(
            f"unsupported session version {parts[1]!r} (supported: "
            f"{SESSION_VERSION})")
    return _validate_client_id(parts[2])


def session_reply(last_seq: int, durable_seq: int) -> bytes:
    """The server's answer to a hello: both per-client watermarks."""
    return f"OK {int(last_seq)} {int(durable_seq)}\n".encode("ascii")


def refusal_line(reason: str) -> bytes:
    """The server's answer when admission control refuses the session."""
    cleaned = " ".join(str(reason).split()) or "refused"
    return f"ERR {cleaned}\n".encode("ascii")


def parse_session_reply(line: bytes) -> Tuple[int, int]:
    """Parse ``OK <last> <durable>``; returns the watermark pair.

    A refusal (``ERR <reason>``) raises :class:`~repro.errors.WireError`
    carrying the server's reason — the client maps it to a terminal
    :class:`~repro.errors.ClientError` rather than retrying into a ban.
    """
    text = _ascii_line(line)
    parts = text.split()
    if parts and parts[0] == "ERR":
        raise WireError(
            f"session refused: {' '.join(parts[1:]) or 'unspecified'}")
    if len(parts) != 3 or parts[0] != "OK":
        raise WireError(f"malformed session reply {line!r}")
    last_seq, durable_seq = _watermarks(parts[1], parts[2], line)
    return last_seq, durable_seq


def ack_line(seq: int, durable_seq: int) -> bytes:
    """One per-frame acknowledgement line."""
    return f"ACK {int(seq)} {int(durable_seq)}\n".encode("ascii")


def parse_ack(line: bytes) -> Tuple[int, int]:
    """Parse ``ACK <seq> <durable>``; returns the pair."""
    parts = _ascii_line(line).split()
    if len(parts) != 3 or parts[0] != "ACK":
        raise WireError(f"malformed ack line {line!r}")
    return _watermarks(parts[1], parts[2], line)


def _ascii_line(line: bytes) -> str:
    if len(line) > MAX_LINE_BYTES:
        raise WireError(f"session line exceeds {MAX_LINE_BYTES} bytes")
    try:
        return bytes(line).decode("ascii").strip()
    except UnicodeDecodeError:
        raise WireError(f"non-ascii session line {line!r}") from None


def _watermarks(last_raw: str, durable_raw: str,
                line: bytes) -> Tuple[int, int]:
    try:
        last_seq, durable_seq = int(last_raw), int(durable_raw)
    except ValueError:
        raise WireError(f"non-numeric watermark in {line!r}") from None
    if last_seq < 0 or durable_seq < 0 or durable_seq > last_seq:
        raise WireError(
            f"inconsistent watermarks last={last_seq} "
            f"durable={durable_seq}")
    return last_seq, durable_seq


class SequencedDecoder:
    """Incremental splitter for a stream of envelope-wrapped frames.

    The sequenced sibling of :class:`~repro.wire.FrameDecoder`: feed
    arbitrary chunks, get back ``(seq, frame, wire_bytes)`` triples where
    ``wire_bytes`` counts the envelope too (so byte accounting charges
    what actually crossed the socket). Structural garbage — a bad
    envelope magic, a corrupt frame — raises
    :class:`~repro.errors.WireError` immediately; the buffered bytes
    (:attr:`pending_bytes`) are the undecodable remainder the caller
    should charge to the peer before dropping the connection.
    """

    def __init__(self, max_frame_bytes: int = 1 << 28):
        self._buffer = bytearray()
        self.max_frame_bytes = max_frame_bytes

    def feed(self, data: Union[bytes, bytearray]
             ) -> Iterator[Tuple[int, WireFrame, int]]:
        """Absorb ``data``; yield every ``(seq, frame, nbytes)`` completed."""
        self._buffer += data
        while True:
            if len(self._buffer) < ENVELOPE.size:
                return
            magic, seq = ENVELOPE.unpack_from(self._buffer, 0)
            if magic != SEQ_MAGIC:
                raise WireError(f"bad envelope magic {bytes(magic)!r}")
            if seq < 1:
                raise WireError(f"envelope sequence {seq} out of range")
            head = self._buffer[ENVELOPE.size:ENVELOPE.size + 16]
            length = frame_length(head)
            if length is None:
                return
            if length > self.max_frame_bytes:
                raise WireError(
                    f"declared frame length {length} exceeds the "
                    f"{self.max_frame_bytes}-byte limit")
            total = ENVELOPE.size + length
            if len(self._buffer) < total:
                return
            # bytes() detaches the frame from the reusable buffer so the
            # decoded report's zero-copy views stay valid after the next
            # feed().
            frame = decode_frame(bytes(self._buffer[ENVELOPE.size:total]))
            del self._buffer[:total]
            yield seq, frame, total

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) envelope+frame."""
        return len(self._buffer)
