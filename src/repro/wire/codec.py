"""Binary report frames: encode/decode for every registry report type.

Frame layout (version 1, all integers little-endian)
----------------------------------------------------

::

    offset  size  field
    0       4     magic ``b"FLW1"``
    4       1     format version (1)
    5       1     protocol wire code (``ProtocolSpec.wire_code``)
    6       2     header length H (u16) — prologue + tables + CRC + pad
    8       8     total frame length (u64)
    16      8     epsilon (f64) — the ReportSpec pin
    24      4     num_cells (u32) — the ReportSpec pin
    28      4     CRC-32 of the payload bytes ``[H, frame length)``
    32      var   grid key: count (u8), then count × i64
            var   array table: count (u8), then per array
                    name (u8 length + ascii), dtype (u8 length + numpy
                    ``dtype.str``, e.g. ``"<i8"``), payload offset (u64,
                    from frame start, 8-byte aligned), element count (u64)
            var   scalar table: count (u8), then per scalar
                    name (u8 length + ascii), tag (``b"i"``/``b"f"``),
                    value (i64 or f64)
    H-4     4     CRC-32 of the header bytes ``[0, H-4)``
    H       ...   payload: raw array bytes at their declared offsets

Every multi-byte payload array starts at an offset that is a multiple of
8, so :func:`decode_frame` can hand out **zero-copy**
:func:`numpy.frombuffer` views of the frame — decoding a frame allocates
no array memory. The views are read-only; every consumer downstream
(merge monoids, estimators) treats reports as immutable, so this is free
hardening, not a restriction.

Versioning rules
----------------
* The magic and the version byte gate everything: an unknown magic is not
  a frame; an unknown version is rejected (no silent best-effort parse).
* Within version 1, the header is self-describing (explicit header
  length, named fields, explicit offsets), so *adding* report fields or
  protocols (new wire codes) requires no format bump.
* Any change to the prologue layout, CRC coverage, or table encodings is
  a new version byte. Wire codes are never recycled across protocols.

Corruption and forgery are different failures: a frame that is truncated,
bit-flipped, or structurally nonsensical raises
:class:`~repro.errors.WireError` here (both CRCs must match, every offset
must be in bounds), while a frame that *decodes* cleanly but lies about
its parameters is handed to the ingestion sanitizers, which check the
decoded pin against the collector's planned
:class:`~repro.robustness.ReportSpec` and apply the configured policy.
"""

from __future__ import annotations

import dataclasses
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ReproError, WireError
from repro.fo.registry import get as protocol_spec
from repro.fo.registry import spec_for_wire_code

MAGIC = b"FLW1"
FRAME_VERSION = 1

#: fixed prologue: magic, version, wire code, header len, frame len,
#: epsilon, num_cells, payload crc
_PROLOGUE = struct.Struct("<4sBBHQdII")
_CRC = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U64 = struct.Struct("<Q")

#: hard ceilings a structurally valid frame must respect; generous for
#: every real report, tight enough that a forged header cannot drive a
#: pathological allocation before the CRC check catches it
MAX_KEY_ENTRIES = 16
MAX_FIELDS = 32
_ALLOWED_KINDS = frozenset("iuf")


@dataclass(frozen=True)
class WireFrame:
    """One decoded frame: the ReportSpec pin plus the report itself."""

    protocol: str
    epsilon: float
    num_cells: int
    key: Tuple[int, ...]
    report: object
    nbytes: int


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def _classify_fields(report) -> Tuple[List[Tuple[str, np.ndarray]],
                                      List[Tuple[str, object]]]:
    """Split a report dataclass into array fields and scalar fields."""
    arrays: List[Tuple[str, np.ndarray]] = []
    scalars: List[Tuple[str, object]] = []
    for field in dataclasses.fields(report):
        value = getattr(report, field.name)
        if isinstance(value, np.ndarray):
            if value.ndim != 1:
                raise WireError(
                    f"cannot encode field {field.name!r}: wire arrays "
                    f"must be 1-D, got shape {value.shape}")
            arrays.append((field.name, np.ascontiguousarray(value)))
        elif isinstance(value, (bool, int, float, np.integer,
                                np.floating)):
            scalars.append((field.name, value))
        else:
            raise WireError(
                f"cannot encode field {field.name!r} of type "
                f"{type(value).__name__}: wire reports carry numpy "
                f"arrays and numeric scalars only")
    return arrays, scalars


def _encode_name(name: str) -> bytes:
    encoded = name.encode("ascii")
    if not 0 < len(encoded) < 256:
        raise WireError(f"field name {name!r} does not fit the wire")
    return bytes([len(encoded)]) + encoded


def encode_report(report, *, protocol: str, epsilon: float,
                  num_cells: int, key: Tuple[int, ...]) -> bytes:
    """Serialize one report into a self-contained wire frame.

    ``protocol``, ``epsilon``, ``num_cells`` and ``key`` are the
    :class:`~repro.robustness.ReportSpec` pin the receiving aggregator
    validates; they describe the *collection slot* the report claims,
    independent of whatever parameters the report itself declares.
    """
    spec = protocol_spec(protocol)
    if spec.wire_code is None:
        raise WireError(
            f"protocol {protocol!r} has no wire_code; its reports cannot "
            f"travel over the wire")
    if spec.report_type is None or not isinstance(report,
                                                  spec.report_type):
        raise WireError(
            f"protocol {protocol!r} emits "
            f"{getattr(spec.report_type, '__name__', None)!r} reports, "
            f"got {type(report).__name__}")
    key = tuple(int(k) for k in key)
    if len(key) > MAX_KEY_ENTRIES:
        raise WireError(f"grid key {key} exceeds {MAX_KEY_ENTRIES} entries")
    arrays, scalars = _classify_fields(report)
    if len(arrays) > MAX_FIELDS or len(scalars) > MAX_FIELDS:
        raise WireError("report has too many fields for the wire")

    # Variable header tables, with payload offsets filled in a second
    # pass once the header length (and so the payload base) is known.
    tables = bytearray()
    tables.append(len(key))
    for entry in key:
        tables += _I64.pack(entry)
    tables.append(len(arrays))
    offset_slots: List[Tuple[int, np.ndarray]] = []
    for name, array in arrays:
        tables += _encode_name(name)
        dtype_str = array.dtype.str.encode("ascii")
        tables.append(len(dtype_str))
        tables += dtype_str
        offset_slots.append((len(tables), array))
        tables += _U64.pack(0)  # payload offset placeholder
        tables += _U64.pack(len(array))
    tables.append(len(scalars))
    for name, value in scalars:
        tables += _encode_name(name)
        if isinstance(value, (bool, int, np.integer)):
            tables += b"i" + _I64.pack(int(value))
        else:
            tables += b"f" + _F64.pack(float(value))

    header_len = _align8(_PROLOGUE.size + len(tables) + _CRC.size)
    payload_offset = header_len
    for slot, array in offset_slots:
        payload_offset = _align8(payload_offset)
        tables[slot:slot + 8] = _U64.pack(payload_offset)
        payload_offset += array.nbytes
    frame_len = payload_offset

    frame = bytearray(frame_len)
    cursor = header_len
    for _, array in arrays:
        cursor = _align8(cursor)
        frame[cursor:cursor + array.nbytes] = array.tobytes()
        cursor += array.nbytes
    payload_crc = zlib.crc32(memoryview(frame)[header_len:])

    frame[:_PROLOGUE.size] = _PROLOGUE.pack(
        MAGIC, FRAME_VERSION, spec.wire_code, header_len, frame_len,
        float(epsilon), int(num_cells), payload_crc)
    table_end = _PROLOGUE.size + len(tables)
    frame[_PROLOGUE.size:table_end] = tables
    header_crc = zlib.crc32(memoryview(frame)[:header_len - _CRC.size])
    frame[header_len - _CRC.size:header_len] = _CRC.pack(header_crc)
    return bytes(frame)


class _Reader:
    """Bounds-checked cursor over the header's variable tables."""

    def __init__(self, buf: memoryview, start: int, end: int):
        self.buf = buf
        self.pos = start
        self.end = end

    def take(self, count: int) -> memoryview:
        if self.pos + count > self.end:
            raise WireError("frame header truncated mid-table")
        view = self.buf[self.pos:self.pos + count]
        self.pos += count
        return view

    def u8(self) -> int:
        return self.take(1)[0]

    def name(self) -> str:
        raw = bytes(self.take(self.u8()))
        try:
            text = raw.decode("ascii")
        except UnicodeDecodeError:
            raise WireError(f"non-ascii field name {raw!r}") from None
        if not text.isidentifier():
            raise WireError(f"invalid field name {text!r}")
        return text


def frame_length(data: Union[bytes, bytearray, memoryview]
                 ) -> Optional[int]:
    """Total length of the frame starting at ``data[0]``.

    Returns ``None`` when fewer than 16 bytes are available (the fixed
    part of the prologue that carries the length); raises
    :class:`~repro.errors.WireError` on a wrong magic or version, so
    stream consumers fail fast instead of scanning garbage.
    """
    view = memoryview(data)
    if len(view) < 16:
        return None
    if bytes(view[:4]) != MAGIC:
        raise WireError(f"bad frame magic {bytes(view[:4])!r}")
    version = view[4]
    if version != FRAME_VERSION:
        raise WireError(
            f"unsupported frame version {version} (supported: "
            f"{FRAME_VERSION})")
    (length,) = _U64.unpack_from(view, 8)
    return length


def decode_frame(data: Union[bytes, bytearray, memoryview]) -> WireFrame:
    """Parse one frame; payload arrays are zero-copy views into ``data``.

    Raises :class:`~repro.errors.WireError` on any structural defect —
    truncation, CRC mismatch (header or payload), unknown wire code,
    out-of-bounds offsets, or a payload that the report constructor
    rejects. A clean decode guarantees nothing about honesty: the caller
    must still pass ``report`` through the ingestion sanitizers with the
    frame's pin.
    """
    view = memoryview(data)
    if isinstance(data, (bytearray, memoryview)) and not view.readonly:
        view = view.toreadonly()
    if len(view) < _PROLOGUE.size:
        raise WireError(
            f"frame truncated: {len(view)} bytes < {_PROLOGUE.size}-byte "
            f"prologue")
    (magic, version, wire_code, header_len, frame_len, epsilon,
     num_cells, payload_crc) = _PROLOGUE.unpack_from(view, 0)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if version != FRAME_VERSION:
        raise WireError(
            f"unsupported frame version {version} (supported: "
            f"{FRAME_VERSION})")
    if not _PROLOGUE.size + _CRC.size <= header_len <= frame_len:
        raise WireError(
            f"inconsistent lengths: header {header_len}, frame "
            f"{frame_len}")
    if len(view) < frame_len:
        raise WireError(
            f"frame truncated: {len(view)} of {frame_len} bytes")
    view = view[:frame_len]
    stored_header_crc = _CRC.unpack_from(
        view, header_len - _CRC.size)[0]
    if zlib.crc32(view[:header_len - _CRC.size]) != stored_header_crc:
        raise WireError("header CRC mismatch (corrupted frame)")
    if zlib.crc32(view[header_len:]) != payload_crc:
        raise WireError("payload CRC mismatch (corrupted frame)")
    spec = spec_for_wire_code(wire_code)
    if spec is None:
        raise WireError(f"unknown protocol wire code {wire_code}")

    reader = _Reader(view, _PROLOGUE.size, header_len - _CRC.size)
    key_len = reader.u8()
    if key_len > MAX_KEY_ENTRIES:
        raise WireError(f"grid key length {key_len} exceeds "
                        f"{MAX_KEY_ENTRIES}")
    key = tuple(_I64.unpack(reader.take(8))[0] for _ in range(key_len))

    n_arrays = reader.u8()
    if n_arrays > MAX_FIELDS:
        raise WireError(f"array field count {n_arrays} exceeds "
                        f"{MAX_FIELDS}")
    fields = {}
    for _ in range(n_arrays):
        name = reader.name()
        dtype_raw = bytes(reader.take(reader.u8()))
        try:
            dtype = np.dtype(dtype_raw.decode("ascii"))
        except (TypeError, ValueError, UnicodeDecodeError):
            raise WireError(f"undecodable dtype {dtype_raw!r} for field "
                            f"{name!r}") from None
        if dtype.kind not in _ALLOWED_KINDS or dtype.itemsize > 8:
            raise WireError(
                f"field {name!r} dtype {dtype} outside the allowed "
                f"integer/float wire types")
        (offset,) = _U64.unpack(reader.take(8))
        (count,) = _U64.unpack(reader.take(8))
        end = offset + count * dtype.itemsize
        if offset < header_len or end > frame_len:
            raise WireError(
                f"field {name!r} payload [{offset}, {end}) escapes the "
                f"frame [{header_len}, {frame_len})")
        if name in fields:
            raise WireError(f"duplicate field {name!r}")
        fields[name] = np.frombuffer(view, dtype=dtype, count=count,
                                     offset=offset)

    n_scalars = reader.u8()
    if n_scalars > MAX_FIELDS:
        raise WireError(f"scalar field count {n_scalars} exceeds "
                        f"{MAX_FIELDS}")
    for _ in range(n_scalars):
        name = reader.name()
        tag = bytes(reader.take(1))
        if tag == b"i":
            (value,) = _I64.unpack(reader.take(8))
        elif tag == b"f":
            (value,) = _F64.unpack(reader.take(8))
        else:
            raise WireError(f"unknown scalar tag {tag!r} for field "
                            f"{name!r}")
        if name in fields:
            raise WireError(f"duplicate field {name!r}")
        fields[name] = value

    try:
        report = spec.report_type(**fields)
    except (ReproError, TypeError, ValueError, OverflowError) as exc:
        raise WireError(
            f"frame payload does not build a valid "
            f"{spec.report_type.__name__}: {exc}") from None
    return WireFrame(protocol=spec.name, epsilon=epsilon,
                     num_cells=num_cells, key=key, report=report,
                     nbytes=frame_len)


class FrameDecoder:
    """Incremental splitter for a byte stream of concatenated frames.

    Feed arbitrary chunks (as a socket delivers them); complete frames
    come out decoded, partial ones wait for more bytes. A structurally
    invalid prefix raises :class:`~repro.errors.WireError` immediately —
    there is no way to resynchronize a binary stream after garbage, so
    the connection should be dropped.
    """

    def __init__(self, max_frame_bytes: int = 1 << 28):
        self._buffer = bytearray()
        self.max_frame_bytes = max_frame_bytes

    def feed(self, data: bytes) -> Iterator[WireFrame]:
        """Absorb ``data``; yield every frame it completes."""
        self._buffer += data
        while True:
            length = frame_length(self._buffer)
            if length is None:
                return
            if length > self.max_frame_bytes:
                raise WireError(
                    f"declared frame length {length} exceeds the "
                    f"{self.max_frame_bytes}-byte limit")
            if len(self._buffer) < length:
                return
            # bytes() detaches the frame from the reusable buffer so the
            # decoded report's zero-copy views stay valid after the next
            # feed().
            frame = decode_frame(bytes(self._buffer[:length]))
            del self._buffer[:length]
            yield frame

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer)
