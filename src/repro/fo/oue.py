"""Optimized Unary Encoding (Wang et al. USENIX'17) — extension protocol.

Not used by the paper's strategies (which adaptively pick GRR or OLH), but
OUE matches OLH's variance exactly and is useful as an independent check in
tests and ablations: it has no hashing step, so disagreement between OUE and
OLH estimates isolates hash-family problems.

The user one-hot encodes their value and flips each bit independently:
a 1 stays 1 with probability ``p = 1/2``; a 0 becomes 1 with probability
``q = 1/(e^ε + 1)``. The privacy loss concentrates on the single 1-bit,
giving ``p(1-q) / (q(1-p)) = e^ε``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ProtocolError
from repro.fo import kernels
from repro.fo.base import FrequencyOracle
from repro.fo.variance import oue_variance
from repro.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class OUEReport:
    """Aggregated OUE reports: per-value 1-bit counts over ``n`` users.

    Storing the column sums (rather than the full ``n x d`` bit matrix) is
    lossless for estimation and keeps memory linear in ``d``.
    """

    ones: np.ndarray
    n: int

    def __len__(self) -> int:
        return self.n


class OptimizedUnaryEncoding(FrequencyOracle):
    """OUE frequency oracle over ``{0..d-1}``."""

    name = "oue"

    #: rows perturbed per vectorized block (bounds peak memory at
    #: ``_BLOCK * d`` bits regardless of n)
    _BLOCK = 65536

    def __init__(self, epsilon: float, domain_size: int):
        super().__init__(epsilon, domain_size)
        self.p = 0.5
        self.q = 1.0 / (math.exp(self.epsilon) + 1.0)

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> OUEReport:
        """Ψ_OUE: one-hot encode and flip bits, block by block."""
        values = self._check_values(values)
        rng = ensure_rng(rng)
        d = self.domain_size
        ones = np.zeros(d, dtype=np.int64)
        for start in range(0, len(values), self._BLOCK):
            block = values[start:start + self._BLOCK]
            # Draws stay here (in the original consumption order); the
            # threshold-and-count transform runs in the kernel layer.
            uniforms = rng.random((len(block), d))
            true_uniforms = rng.random(len(block))
            ones += kernels.ue_accumulate(uniforms, block, true_uniforms,
                                          self.p, self.q)
        return OUEReport(ones=ones, n=len(values))

    def estimate(self, report: OUEReport) -> np.ndarray:
        """Φ_OUE: unbias the per-value 1-bit counts."""
        if len(report.ones) != self.domain_size:
            raise ProtocolError(
                f"report has {len(report.ones)} counters, oracle domain is "
                f"{self.domain_size}"
            )
        if report.n == 0:
            raise ProtocolError("cannot estimate from zero reports")
        return (report.ones / report.n - self.q) / (self.p - self.q)

    def theoretical_variance(self, n: int) -> float:
        return oue_variance(self.epsilon, n)
