"""Square Wave (SW) mechanism with EM / EMS reconstruction.

Li et al., "Estimating Numerical Distributions under Local Differential
Privacy" (SIGMOD 2020) — the paper's reference [25] and its suggested tool
for finer-grained ordinal distributions. SW exploits the *order* of a
numerical domain: a user with value ``v`` (mapped to [0, 1]) reports a draw
from

    ṽ ~ density  p  on [v − b, v + b]      ("close" reports)
         density  q  on the rest of [−b, 1 + b]

with ``p/q = e^ε``, so SW is ε-LDP. The wave half-width ``b`` maximizes
the mutual information between input and report (closed form below). The
aggregator buckets the reports and reconstructs the input distribution by
expectation maximization, optionally with binomial smoothing between
iterations (EMS) — smoothing regularizes the deconvolution exactly the way
the original paper does.

Within this package SW serves as an alternative backend for OHG's 1-D
refinement grids (``FelipConfig(one_d_protocol="sw")``), reconstructing
value-level marginals instead of coarse cell histograms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ProtocolError
from repro.fo import kernels
from repro.fo.base import FrequencyOracle
from repro.rng import RngLike, ensure_rng


def optimal_wave_width(epsilon: float) -> float:
    """The information-maximizing half-width ``b`` (Li et al., Eq. 5).

    ``b = (ε e^ε − e^ε + 1) / (2 e^ε (e^ε − 1 − ε))``, which tends to 1/2
    as ε → 0 (reports nearly uniform) and to 0 as ε → ∞ (reports pin the
    value).
    """
    e = math.exp(epsilon)
    denominator = 2.0 * e * (e - 1.0 - epsilon)
    if denominator <= 0.0:  # epsilon tiny: limit value 1/2
        return 0.5
    return (epsilon * e - e + 1.0) / denominator


@dataclass(frozen=True)
class SWReport:
    """Bucketed SW reports over the padded domain ``[−b, 1 + b]``."""

    counts: np.ndarray
    n: int
    wave_width: float

    def __len__(self) -> int:
        return self.n


class SquareWave(FrequencyOracle):
    """SW frequency oracle over the ordinal domain ``{0..d-1}``.

    Parameters
    ----------
    epsilon:
        Privacy budget.
    domain_size:
        ``d``; input values are the bucket midpoints ``(i + 0.5) / d``.
    report_buckets:
        Output discretization of ``[−b, 1 + b]`` (default: ``d`` buckets,
        matching the reference implementation).
    smoothing:
        Apply the EMS binomial smoothing step between EM iterations.
    max_iters, tolerance:
        EM stopping rule: iterate until the L1 change of the estimated
        distribution per iteration falls below ``tolerance``.
    """

    name = "sw"

    def __init__(self, epsilon: float, domain_size: int,
                 report_buckets: int = None, smoothing: bool = True,
                 max_iters: int = 1000, tolerance: float = 1e-7):
        super().__init__(epsilon, domain_size)
        self.b = optimal_wave_width(self.epsilon)
        e = math.exp(self.epsilon)
        # Densities integrate to 1 over [-b, 1+b]: 2bp + q = 1.
        self.q = 1.0 / (2.0 * self.b * e + 1.0)
        self.p = e * self.q
        self.report_buckets = report_buckets or self.domain_size
        if self.report_buckets < 2:
            raise ProtocolError(
                f"report_buckets must be >= 2, got {self.report_buckets}")
        self.smoothing = smoothing
        self.max_iters = max_iters
        self.tolerance = tolerance
        self._transition = self._build_transition()

    # -- client side ------------------------------------------------------------

    def _to_unit(self, values: np.ndarray) -> np.ndarray:
        return (values + 0.5) / self.domain_size

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> SWReport:
        """Ψ_SW: draw from the two-level density around the true value."""
        values = self._check_values(values)
        rng = ensure_rng(rng)
        n = len(values)
        v = self._to_unit(values)
        # Three draws, fixed order: the close mask, one uniform on
        # [-b, b] per close report, and one unit uniform per far report
        # (mapped onto [-b, 1 + b] \ [v - b, v + b] by shifting past the
        # wave window). The transform + bucketing runs in the kernel.
        close = rng.random(n) < 2.0 * self.b * self.p
        close_draws = rng.uniform(-self.b, self.b, size=int(close.sum()))
        far_draws = rng.uniform(0.0, 1.0, size=int((~close).sum()))
        width = (1.0 + 2.0 * self.b) / self.report_buckets
        counts = kernels.sw_transform(v, close, close_draws, far_draws,
                                      self.b, width, self.report_buckets)
        return SWReport(counts=counts, n=n, wave_width=self.b)

    # -- server side --------------------------------------------------------------

    def _build_transition(self) -> np.ndarray:
        """``M[j, i] = P[report bucket j | input bucket i]``.

        Exact integration of the piecewise-constant density over each
        report bucket.
        """
        d, r = self.domain_size, self.report_buckets
        centers = (np.arange(d) + 0.5) / d
        edges = -self.b + (1.0 + 2.0 * self.b) * np.arange(r + 1) / r
        matrix = np.empty((r, d))
        for i, v in enumerate(centers):
            lo, hi = v - self.b, v + self.b
            # Mass of [a, c] under the density for value v.
            inside = (np.minimum(edges[1:], hi)
                      - np.maximum(edges[:-1], lo)).clip(min=0.0)
            total = edges[1:] - edges[:-1]
            matrix[:, i] = self.p * inside + self.q * (total - inside)
        # Normalize defensively against edge-clipping round-off.
        matrix /= matrix.sum(axis=0, keepdims=True)
        return matrix

    def _smooth(self, frequencies: np.ndarray) -> np.ndarray:
        """EMS binomial smoothing: kernel [1, 2, 1] / 4, edges re-weighted."""
        padded = np.empty(len(frequencies) + 2)
        padded[1:-1] = frequencies
        padded[0] = frequencies[0]
        padded[-1] = frequencies[-1]
        smoothed = (padded[:-2] + 2.0 * padded[1:-1] + padded[2:]) / 4.0
        total = smoothed.sum()
        return smoothed / total if total > 0 else smoothed

    def estimate(self, report: SWReport) -> np.ndarray:
        """Φ_SW: EM (with optional smoothing) deconvolution of the reports."""
        if len(report.counts) != self.report_buckets:
            raise ProtocolError(
                f"report has {len(report.counts)} buckets, oracle expects "
                f"{self.report_buckets}")
        if report.n == 0:
            raise ProtocolError("cannot estimate from zero reports")
        if abs(report.wave_width - self.b) > 1e-12:
            raise ProtocolError(
                f"report wave width {report.wave_width} != oracle's "
                f"{self.b}")
        counts = report.counts.astype(np.float64)
        freq = np.full(self.domain_size, 1.0 / self.domain_size)
        for _ in range(self.max_iters):
            mixture = self._transition @ freq
            mixture = np.maximum(mixture, 1e-300)
            # E step: responsibility-weighted counts; M step: renormalize.
            posterior = (self._transition * freq[None, :]
                         / mixture[:, None])
            new_freq = posterior.T @ (counts / report.n)
            new_freq = np.maximum(new_freq, 0.0)
            total = new_freq.sum()
            if total > 0:
                new_freq /= total
            if self.smoothing:
                new_freq = self._smooth(new_freq)
            change = float(np.abs(new_freq - freq).sum())
            freq = new_freq
            if change < self.tolerance:
                break
        return freq

    def theoretical_variance(self, n: int) -> float:
        """No closed form exists for the EM estimate; we report the
        variance of the *unbiased matrix-inversion* estimator's dominant
        term, ``q(1−q)/(n(p−q)²)`` with bucket-level p/q, as a
        conservative proxy (used only for consistency weighting)."""
        if n < 1:
            raise ProtocolError(f"n must be >= 1, got {n}")
        width = (1.0 + 2.0 * self.b) / self.report_buckets
        p_bucket = min(self.p * width, 1.0)
        q_bucket = min(self.q * width, 1.0)
        return (q_bucket * (1 - q_bucket)
                / (n * max(p_bucket - q_bucket, 1e-12) ** 2))
