"""Optimized Local Hashing (paper, Section 2.2.2; Wang et al. USENIX'17).

Each user hashes their value into a small range ``g = ⌈e^ε⌉ + 1`` with a
private random hash function, then GRR-perturbs the hashed value with budget
ε over the domain ``{0..g-1}``. The aggregator counts, for every domain
value ``v``, the reports that *support* ``v`` (their hash of ``v`` equals the
reported bucket), then unbiases the support count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ProtocolError
from repro.fo.base import FrequencyOracle
from repro.fo.hashing import chain_hash, random_seeds
from repro.fo.variance import olh_variance
from repro.rng import RngLike, ensure_rng


def optimal_hash_range(epsilon: float) -> int:
    """``g`` minimizing OLH variance: ``⌈e^ε⌉ + 1``, at least 2."""
    return max(2, int(math.ceil(math.exp(epsilon))) + 1)


@dataclass(frozen=True)
class OLHReport:
    """Batch of OLH reports: per-user hash seed and perturbed bucket."""

    seeds: np.ndarray
    buckets: np.ndarray
    hash_range: int
    domain_size: int

    def __post_init__(self) -> None:
        if len(self.seeds) != len(self.buckets):
            raise ProtocolError(
                f"{len(self.seeds)} seeds vs {len(self.buckets)} buckets"
            )

    def __len__(self) -> int:
        return len(self.seeds)


class OptimizedLocalHashing(FrequencyOracle):
    """OLH frequency oracle over ``{0..d-1}``."""

    name = "olh"

    def __init__(self, epsilon: float, domain_size: int,
                 hash_range: int = None):
        super().__init__(epsilon, domain_size)
        self.g = hash_range or optimal_hash_range(self.epsilon)
        if self.g < 2:
            raise ProtocolError(f"hash range must be >= 2, got {self.g}")
        e = math.exp(self.epsilon)
        self.p = e / (e + self.g - 1)
        self.q = 1.0 / (e + self.g - 1)

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> OLHReport:
        """Ψ_OLH: hash to ``[0, g)``, then GRR-perturb the bucket."""
        values = self._check_values(values)
        rng = ensure_rng(rng)
        n = len(values)
        seeds = random_seeds(n, rng)
        hashed = chain_hash(seeds, [values], self.g).astype(np.int64)
        keep = rng.random(n) < self.p
        others = rng.integers(0, self.g - 1, size=n)
        others = others + (others >= hashed)
        return OLHReport(seeds=seeds,
                         buckets=np.where(keep, hashed, others),
                         hash_range=self.g, domain_size=self.domain_size)

    def support_counts(self, report: OLHReport) -> np.ndarray:
        """``C(v)`` for every ``v``: reports whose hash of ``v`` matches."""
        counts = np.empty(self.domain_size, dtype=np.int64)
        for v in range(self.domain_size):
            hashed_v = chain_hash(report.seeds, [v], self.g)
            counts[v] = int(np.count_nonzero(
                hashed_v == report.buckets.astype(np.uint64)))
        return counts

    def estimate(self, report: OLHReport) -> np.ndarray:
        """Φ_OLH: unbias the support counts."""
        if report.domain_size != self.domain_size:
            raise ProtocolError(
                f"report domain {report.domain_size} != oracle domain "
                f"{self.domain_size}"
            )
        if report.hash_range != self.g:
            raise ProtocolError(
                f"report hash range {report.hash_range} != oracle's {self.g}"
            )
        n = len(report)
        if n == 0:
            raise ProtocolError("cannot estimate from zero reports")
        counts = self.support_counts(report)
        return (counts / n - 1.0 / self.g) / (self.p - 1.0 / self.g)

    def theoretical_variance(self, n: int) -> float:
        return olh_variance(self.epsilon, n)
