"""Optimized Local Hashing (paper, Section 2.2.2; Wang et al. USENIX'17).

Each user hashes their value into a small range ``g = ⌈e^ε⌉ + 1`` with a
private random hash function, then GRR-perturbs the hashed value with budget
ε over the domain ``{0..g-1}``. The aggregator counts, for every domain
value ``v``, the reports that *support* ``v`` (their hash of ``v`` equals the
reported bucket), then unbiases the support count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import ProtocolError
from repro.fo import kernels
from repro.fo.base import FrequencyOracle
from repro.fo.hashing import (
    DEFAULT_TILE_BYTES,
    chain_hash,
    mix_seeds,
    random_seeds,
)
from repro.fo.variance import olh_variance
from repro.rng import RngLike, ensure_rng


def optimal_hash_range(epsilon: float) -> int:
    """``g`` minimizing OLH variance: ``⌈e^ε⌉ + 1``, at least 2."""
    try:
        e = math.exp(epsilon)
    except OverflowError:
        raise ProtocolError(
            f"epsilon={epsilon} is too large for OLH: e^epsilon overflows "
            f"(the optimal hash range ⌈e^ε⌉ + 1 would exceed float range); "
            f"use GRR, or pass an explicit hash_range"
        ) from None
    return max(2, int(math.ceil(e)) + 1)


@dataclass(frozen=True)
class OLHReport:
    """Batch of OLH reports: per-user hash seed and perturbed bucket.

    Invariants enforced at construction: one bucket per seed, and every
    bucket in ``[0, hash_range)``. ``seeds`` and ``buckets`` are normalized
    to ``uint64`` so estimation never re-casts inside the hot path.
    """

    seeds: np.ndarray
    buckets: np.ndarray
    hash_range: int
    domain_size: int

    def __post_init__(self) -> None:
        seeds = np.asarray(self.seeds, dtype=np.uint64)
        buckets = np.asarray(self.buckets)
        if len(seeds) != len(buckets):
            raise ProtocolError(
                f"{len(seeds)} seeds vs {len(buckets)} buckets"
            )
        if self.hash_range < 1:
            raise ProtocolError(
                f"hash range must be >= 1, got {self.hash_range}")
        if len(buckets) and (
                (buckets.min() < 0)
                or np.uint64(buckets.max()) >= np.uint64(self.hash_range)):
            raise ProtocolError(
                f"buckets must lie in [0, {self.hash_range}), got range "
                f"[{buckets.min()}, {buckets.max()}]"
            )
        object.__setattr__(self, "seeds", seeds)
        object.__setattr__(
            self, "buckets", buckets.astype(np.uint64, copy=False))

    @cached_property
    def mixed_seeds(self) -> np.ndarray:
        """Pre-mixed splitmix64 state, computed once per report batch.

        Every support-counting pass starts from this state; caching it on
        the report means repeated estimates (or repeated interval queries
        against the same report, as HIO issues) skip the re-mix.
        """
        return mix_seeds(self.seeds)

    def __len__(self) -> int:
        return len(self.seeds)


class OptimizedLocalHashing(FrequencyOracle):
    """OLH frequency oracle over ``{0..d-1}``."""

    name = "olh"

    def __init__(self, epsilon: float, domain_size: int,
                 hash_range: int = None,
                 tile_bytes: int = DEFAULT_TILE_BYTES):
        super().__init__(epsilon, domain_size)
        self.g = hash_range or optimal_hash_range(self.epsilon)
        if self.g < 2:
            raise ProtocolError(f"hash range must be >= 2, got {self.g}")
        self.tile_bytes = tile_bytes
        e = math.exp(self.epsilon)
        self.p = e / (e + self.g - 1)
        self.q = 1.0 / (e + self.g - 1)

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> OLHReport:
        """Ψ_OLH: hash to ``[0, g)``, then GRR-perturb the bucket."""
        values = self._check_values(values)
        rng = ensure_rng(rng)
        n = len(values)
        seeds = random_seeds(n, rng)
        hashed = chain_hash(seeds, [values], self.g).astype(np.int64)
        # Draws stay on the Generator (original order); the keep/other
        # selection over [0, g) runs in the shared GRR kernel.
        keep_uniforms = rng.random(n)
        others = rng.integers(0, self.g - 1, size=n)
        return OLHReport(seeds=seeds,
                         buckets=kernels.grr_apply(hashed, keep_uniforms,
                                                   others, self.p),
                         hash_range=self.g, domain_size=self.domain_size)

    def support_counts(self, report: OLHReport) -> np.ndarray:
        """``C(v)`` for every ``v``: reports whose hash of ``v`` matches.

        One call to the tiled kernel over the whole domain — O(d·n) work in
        numpy tiles bounded by ``tile_bytes``, no Python-level loop over
        domain values. Counts are memoized on the report (keyed by hash
        range and domain), so answering many queries against one collected
        batch pays the O(d·n) sweep once; a report batch is immutable, so
        its support counts never change.
        """
        cache = report.__dict__.setdefault("_support_counts", {})
        key = (self.g, self.domain_size)
        if key not in cache:
            cache[key] = kernels.support_counts(
                report.mixed_seeds, report.buckets, self.g,
                np.arange(self.domain_size, dtype=np.uint64),
                tile_bytes=self.tile_bytes)
        return cache[key].copy()

    def estimate(self, report: OLHReport) -> np.ndarray:
        """Φ_OLH: unbias the support counts."""
        if report.domain_size != self.domain_size:
            raise ProtocolError(
                f"report domain {report.domain_size} != oracle domain "
                f"{self.domain_size}"
            )
        if report.hash_range != self.g:
            raise ProtocolError(
                f"report hash range {report.hash_range} != oracle's {self.g}"
            )
        n = len(report)
        if n == 0:
            raise ProtocolError("cannot estimate from zero reports")
        counts = self.support_counts(report)
        return (counts / n - 1.0 / self.g) / (self.p - 1.0 / self.g)

    def theoretical_variance(self, n: int) -> float:
        return olh_variance(self.epsilon, n)
