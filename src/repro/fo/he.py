"""Histogram Encoding (Wang et al. USENIX'17) — extension protocols.

Each user one-hot encodes their value and adds Laplace(2/ε) noise to every
coordinate (the noisy-histogram randomizer). Two estimators are provided:

* **SHE** (Summation with HE) — the aggregator simply sums the noisy
  histograms; unbiased, variance ``2·(2/ε)² / n`` per value.
* **THE** (Thresholding with HE) — the aggregator counts coordinates above
  a threshold θ and unbiases the count; with the optimal θ this beats SHE
  at small ε but both are dominated by OUE/OLH (which is why FELIP never
  selects them — they exist here as reference points, matching the
  protocol family of Wang et al.'s comparison).

Like OUE, the per-user vector never needs materializing on the server: SHE
keeps coordinate sums, THE keeps above-threshold counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import ProtocolError
from repro.fo import kernels
from repro.fo.base import FrequencyOracle
from repro.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class SHEReport:
    """Coordinate sums of the users' noisy one-hot histograms."""

    sums: np.ndarray
    n: int

    def __len__(self) -> int:
        return self.n


@dataclass(frozen=True)
class THEReport:
    """Above-threshold coordinate counts of the noisy histograms."""

    supports: np.ndarray
    n: int
    threshold: float

    def __len__(self) -> int:
        return self.n


class SummationHistogramEncoding(FrequencyOracle):
    """SHE frequency oracle over ``{0..d-1}``."""

    name = "she"

    _BLOCK = 16384

    def __init__(self, epsilon: float, domain_size: int):
        super().__init__(epsilon, domain_size)
        self.scale = 2.0 / self.epsilon

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> SHEReport:
        """Ψ_HE: one-hot plus iid Laplace(2/ε) noise on every coordinate."""
        values = self._check_values(values)
        rng = ensure_rng(rng)
        d = self.domain_size
        sums = np.zeros(d, dtype=np.float64)
        for start in range(0, len(values), self._BLOCK):
            block = values[start:start + self._BLOCK]
            # Laplace draws stay on the Generator; the one-hot add and
            # the sequential column sum run in the kernel layer.
            noisy = rng.laplace(0.0, self.scale, size=(len(block), d))
            sums += kernels.he_sum_accumulate(noisy, block)
        return SHEReport(sums=sums, n=len(values))

    def estimate(self, report: SHEReport) -> np.ndarray:
        """Φ_SHE: the mean noisy histogram is already unbiased."""
        if len(report.sums) != self.domain_size:
            raise ProtocolError(
                f"report has {len(report.sums)} sums, oracle domain is "
                f"{self.domain_size}")
        if report.n == 0:
            raise ProtocolError("cannot estimate from zero reports")
        return report.sums / report.n

    def theoretical_variance(self, n: int) -> float:
        """``2 (2/ε)² / n`` — the Laplace noise variance per coordinate."""
        if n < 1:
            raise ProtocolError(f"n must be >= 1, got {n}")
        return 2.0 * self.scale ** 2 / n


class ThresholdHistogramEncoding(FrequencyOracle):
    """THE frequency oracle over ``{0..d-1}``.

    Uses the optimal threshold θ solving ``e^{ε(θ−1)/2}·(1−θ) = ...``; we
    take the closed-interval optimum from Wang et al., θ ∈ (0.5, 1),
    found numerically at construction.
    """

    name = "the"

    _BLOCK = 16384

    def __init__(self, epsilon: float, domain_size: int,
                 threshold: float = None):
        super().__init__(epsilon, domain_size)
        self.scale = 2.0 / self.epsilon
        if threshold is None:
            threshold = self._optimal_threshold()
        if not 0.0 < threshold < 1.5:
            raise ProtocolError(
                f"threshold must be in (0, 1.5), got {threshold}")
        self.threshold = threshold
        # P[reported coordinate > θ] for a true 1 (p) and a true 0 (q).
        self.p = 1.0 - self._laplace_cdf(self.threshold - 1.0)
        self.q = 1.0 - self._laplace_cdf(self.threshold)

    def _laplace_cdf(self, x: float) -> float:
        return float(stats.laplace.cdf(x, scale=self.scale))

    def _optimal_threshold(self) -> float:
        """Minimize ``q(1−q)/(p−q)²`` over θ ∈ [0.5, 1] numerically."""
        thetas = np.linspace(0.5, 1.0, 101)
        best_theta, best_var = 0.5, float("inf")
        for theta in thetas:
            p = 1.0 - self._laplace_cdf_static(theta - 1.0)
            q = 1.0 - self._laplace_cdf_static(theta)
            if p - q <= 0:
                continue
            var = q * (1 - q) / (p - q) ** 2
            if var < best_var:
                best_theta, best_var = float(theta), var
        return best_theta

    def _laplace_cdf_static(self, x: float) -> float:
        return float(stats.laplace.cdf(x, scale=2.0 / self.epsilon))

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> THEReport:
        """Ψ_HE then server-side thresholding (simulated jointly)."""
        values = self._check_values(values)
        rng = ensure_rng(rng)
        d = self.domain_size
        supports = np.zeros(d, dtype=np.int64)
        for start in range(0, len(values), self._BLOCK):
            block = values[start:start + self._BLOCK]
            noisy = rng.laplace(0.0, self.scale, size=(len(block), d))
            supports += kernels.he_threshold_accumulate(noisy, block,
                                                        self.threshold)
        return THEReport(supports=supports, n=len(values),
                         threshold=self.threshold)

    def estimate(self, report: THEReport) -> np.ndarray:
        """Φ_THE: unbias the above-threshold counts."""
        if len(report.supports) != self.domain_size:
            raise ProtocolError(
                f"report has {len(report.supports)} counters, oracle "
                f"domain is {self.domain_size}")
        if report.n == 0:
            raise ProtocolError("cannot estimate from zero reports")
        if abs(report.threshold - self.threshold) > 1e-12:
            raise ProtocolError(
                f"report threshold {report.threshold} != oracle's "
                f"{self.threshold}")
        return (report.supports / report.n - self.q) / (self.p - self.q)

    def theoretical_variance(self, n: int) -> float:
        """``q(1−q) / (n (p−q)²)``."""
        if n < 1:
            raise ProtocolError(f"n must be >= 1, got {n}")
        return self.q * (1 - self.q) / (n * (self.p - self.q) ** 2)
