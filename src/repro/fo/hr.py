"""Hadamard Response — extension protocol, and the registry's worked example.

HR (Acharya, Sun & Zhang, AISTATS'19; also benchmarked by Cormode,
Maddock & Maple) communicates a single ±1 bit plus a public row index of
the Hadamard matrix ``H`` of order ``D`` (the smallest power of two
larger than the domain, so every domain value owns a distinct *non-zero*
column ``c(v) = v + 1``; column 0 is all ones and is skipped). The client
draws a uniform row ``j``, computes ``x = H[j, c(v)] = (−1)^popcount(j &
c(v))`` and reports ``y = x`` with probability ``p = e^ε / (e^ε + 1)``,
else ``−x`` — a binary randomized response, so the mechanism is ε-LDP.

Distinct non-zero columns of ``H`` are orthogonal, hence for a uniform
row ``E[H(j, c_u) · H(j, c_v)] = δ_uv`` and

    f̂(v) = (1 / (n (2p − 1))) · Σ_i y_i · H(j_i, c_v)

is unbiased, with per-value variance ≈ ``((e^ε+1)/(e^ε−1))² / n`` —
independent of the domain size, like OLH (and never below it, since
``(e^ε+1)² ≥ 4e^ε``), so registering HR as an adaptive candidate can
never change an existing protocol choice.

This module is the complete integration surface of a new protocol: the
oracle, its report type, the merge monoid, the ingestion sanitizer, the
variance models, and one :func:`~repro.fo.registry.register` call. No
core/planner/merge/policy edits — batch, sharded, streaming, budget-split
collection, robustness ingestion, and grid sizing all pick HR up through
the registry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import IngestError, ProtocolError
from repro.fo import kernels
from repro.fo.base import FrequencyOracle
from repro.fo.registry import ProtocolSpec, register
from repro.rng import RngLike, ensure_rng
from repro.robustness.ingest import (
    IngestPolicy,
    IngestStats,
    Reject,
    ReportSpec,
    check_int_rows,
)


def hadamard_order(domain_size: int) -> int:
    """Smallest power of two strictly larger than ``domain_size``.

    Strictly larger so that every domain value's column ``v + 1`` exists
    and none collides with the all-ones column 0.
    """
    if domain_size < 1:
        raise ProtocolError(
            f"domain_size must be >= 1, got {domain_size}")
    return 1 << int(domain_size).bit_length()


def hr_variance(epsilon: float, n: int = 1) -> float:
    """HR per-value variance ``((e^ε+1)/(e^ε−1))² / n`` (size-independent)."""
    if epsilon <= 0:
        raise ProtocolError(f"epsilon must be positive, got {epsilon}")
    if n < 1:
        raise ProtocolError(f"n must be >= 1, got {n}")
    e = math.exp(epsilon)
    return ((e + 1.0) / (e - 1.0)) ** 2 / n


@dataclass(frozen=True)
class HRReport:
    """Batch of HR reports: one Hadamard row index and one ±1 bit per user.

    Invariants enforced at construction (mirroring :class:`OLHReport`):
    one bit per row, rows in ``[0, hadamard_order)``, bits in ``{−1, +1}``.
    ``rows`` is normalized to ``int64`` and ``bits`` to ``int8``.
    """

    rows: np.ndarray
    bits: np.ndarray
    hadamard_order: int
    domain_size: int

    def __post_init__(self) -> None:
        rows = np.asarray(self.rows)
        bits = np.asarray(self.bits)
        if rows.ndim != 1 or bits.ndim != 1:
            raise ProtocolError(
                f"rows and bits must be 1-D, got shapes {rows.shape} and "
                f"{bits.shape}")
        if len(rows) != len(bits):
            raise ProtocolError(
                f"{len(rows)} rows vs {len(bits)} bits")
        if self.hadamard_order < 2 or \
                self.hadamard_order & (self.hadamard_order - 1):
            raise ProtocolError(
                f"hadamard_order must be a power of two >= 2, got "
                f"{self.hadamard_order}")
        if self.domain_size >= self.hadamard_order:
            raise ProtocolError(
                f"hadamard_order {self.hadamard_order} must exceed the "
                f"domain size {self.domain_size}")
        if len(rows) and (rows.min() < 0
                          or rows.max() >= self.hadamard_order):
            raise ProtocolError(
                f"rows must lie in [0, {self.hadamard_order}), got range "
                f"[{rows.min()}, {rows.max()}]")
        if len(bits) and not np.isin(bits, (-1, 1)).all():
            raise ProtocolError("bits must be -1 or +1")
        object.__setattr__(self, "rows", rows.astype(np.int64, copy=False))
        object.__setattr__(self, "bits", bits.astype(np.int8, copy=False))

    def __len__(self) -> int:
        return len(self.rows)


class HadamardResponse(FrequencyOracle):
    """HR frequency oracle over ``{0..d-1}``."""

    name = "hr"

    def __init__(self, epsilon: float, domain_size: int):
        super().__init__(epsilon, domain_size)
        #: Hadamard order; named ``g`` so the generic
        #: :meth:`repro.robustness.ingest.ReportSpec.from_oracle` pins it
        #: as the report's expected ``hash_range``-style parameter.
        self.g = hadamard_order(self.domain_size)
        e = math.exp(self.epsilon)
        self.p = e / (e + 1.0)

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> HRReport:
        """Ψ_HR: uniform Hadamard row, binary-RR the matrix entry."""
        values = self._check_values(values)
        rng = ensure_rng(rng)
        n = len(values)
        # Draw order is fixed (rows, then keep uniforms); the parity and
        # sign selection run in the kernel layer.
        rows = rng.integers(0, self.g, size=n, dtype=np.int64)
        keep_uniforms = rng.random(n)
        bits = kernels.hr_apply(rows, values, keep_uniforms, self.p)
        return HRReport(rows=rows, bits=bits,
                        hadamard_order=self.g,
                        domain_size=self.domain_size)

    def _supports(self, report: HRReport) -> np.ndarray:
        """``Σ_i y_i · H(j_i, c_v)`` for every domain value ``v``."""
        return kernels.hr_supports(report.rows, report.bits,
                                   self.domain_size)

    def estimate(self, report: HRReport) -> np.ndarray:
        """Φ_HR: unbias the signed Hadamard projections."""
        if report.domain_size != self.domain_size:
            raise ProtocolError(
                f"report domain {report.domain_size} != oracle domain "
                f"{self.domain_size}")
        if report.hadamard_order != self.g:
            raise ProtocolError(
                f"report Hadamard order {report.hadamard_order} != "
                f"oracle's {self.g}")
        n = len(report)
        if n == 0:
            raise ProtocolError("cannot estimate from zero reports")
        return self._supports(report) / (n * (2.0 * self.p - 1.0))

    def theoretical_variance(self, n: int) -> float:
        return hr_variance(self.epsilon, n)


def _merge_hr(reports: Sequence[HRReport]) -> HRReport:
    first = reports[0]
    if any(r.hadamard_order != first.hadamard_order
           or r.domain_size != first.domain_size for r in reports):
        raise ProtocolError("cannot merge HR reports across configs")
    return HRReport(
        rows=np.concatenate([r.rows for r in reports]),
        bits=np.concatenate([r.bits for r in reports]),
        hadamard_order=first.hadamard_order,
        domain_size=first.domain_size)


def _sanitize_hr(report: HRReport, policy: IngestPolicy,
                 stats: IngestStats, spec: Optional[ReportSpec]):
    rows = check_int_rows(report.rows, "rows")
    bits = check_int_rows(report.bits, "bits")
    if len(rows) != len(bits):
        raise Reject("row-bit-mismatch",
                     f"{len(rows)} rows vs {len(bits)} bits")
    order = spec.hash_range if spec and spec.hash_range else \
        int(report.hadamard_order)
    if spec and spec.hash_range and \
            report.hadamard_order != spec.hash_range:
        raise Reject("hadamard-order-mismatch",
                     f"declared {report.hadamard_order}, expected "
                     f"{spec.hash_range}")
    if spec and spec.domain_size and report.domain_size != spec.domain_size:
        raise Reject("domain-mismatch",
                     f"declared {report.domain_size}, "
                     f"expected {spec.domain_size}")
    valid = (rows >= 0) & (rows < order) & ((bits == 1) | (bits == -1))
    bad = int(len(rows) - valid.sum())
    if bad == 0:
        return HRReport(rows=rows, bits=bits, hadamard_order=order,
                        domain_size=report.domain_size), len(rows)
    if policy.mode == "strict":
        stats.record_reject("invalid-hr-rows", bad, policy,
                            f"{bad}/{len(rows)} rows")
        raise IngestError(
            f"HR report carries {bad} rows outside [0, {order}) or bits "
            f"outside {{-1, +1}}; strict ingest policy rejects it")
    stats.record_reject("invalid-hr-rows", bad, policy,
                        f"{bad}/{len(rows)} rows", whole_report=False)
    if not valid.any():
        return None, 0
    return HRReport(rows=rows[valid], bits=bits[valid],
                    hadamard_order=order,
                    domain_size=report.domain_size), int(valid.sum())


def _hr_layout(oracle, rows: int) -> dict:
    """Shared-memory report layout: one (row, bit) pair per user."""
    return {"rows": ((rows,), np.dtype(np.int64)),
            "bits": ((rows,), np.dtype(np.int8))}


def _hr_analytic(epsilon: float, num_cells: int, n: int) -> float:
    return hr_variance(epsilon, n)


def _hr_cell_variance(params, num_cells: int) -> float:
    return params.m * hr_variance(params.epsilon, params.n)


register(ProtocolSpec(
    name="hr",
    wire_code=8,
    factory=HadamardResponse,
    report_type=HRReport,
    merger=_merge_hr,
    sanitizer=_sanitize_hr,
    report_layout=_hr_layout,
    analytic_variance=_hr_analytic,
    cell_variance=_hr_cell_variance,
    adaptive_candidate=True,  # never wins over OLH: (e^ε+1)² ≥ 4e^ε
    kernels=("hr_apply", "hr_supports"),
))
