"""Numba backend: ``@njit(cache=True)`` kernels, import-gated.

Numba is an *optional* accelerator (the ``speed`` packaging extra). This
module imports it inside a try/except; when it is absent — as on the
current bench hosts — :func:`available` is False and the dispatch layer
never touches the jitted functions. Nothing else in the package may
import numba directly.

The jitted loops are line-for-line the same accumulation orders as
:mod:`repro.fo.kernels.c_impl` (and therefore as numpy's axis-0 reduce),
preserving the bit-identity contract. ``fastmath`` stays off everywhere:
it licenses reassociation and FMA contraction, either of which breaks
float bit-identity.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.fo.kernels import numpy_impl

try:  # pragma: no cover - exercised only where numba is installed
    import numba
    from numba import njit

    _import_error: Optional[str] = None
except Exception as exc:  # pragma: no cover
    numba = None
    njit = None
    _import_error = f"{type(exc).__name__}: {exc}"


def available() -> bool:
    return numba is not None


def load_error() -> Optional[str]:
    return _import_error


if numba is not None:  # pragma: no cover - requires the speed extra

    _GOLDEN = np.uint64(0x9E3779B97F4A7C15)
    _MIX1 = np.uint64(0xBF58476D1CE4E5B9)
    _MIX2 = np.uint64(0x94D049BB133111EB)

    @njit(cache=True)
    def _sm64(x):
        x = x + _GOLDEN
        x = (x ^ (x >> np.uint64(30))) * _MIX1
        x = (x ^ (x >> np.uint64(27))) * _MIX2
        return x ^ (x >> np.uint64(31))

    @njit(cache=True)
    def _grr_apply(values, keep_u, others, p):
        n = values.shape[0]
        out = np.empty(n, dtype=np.int64)
        for i in range(n):
            other = others[i] + (others[i] >= values[i])
            out[i] = values[i] if keep_u[i] < p else other
        return out

    @njit(cache=True)
    def _ue_accumulate(uniforms, values, true_u, p, q):
        n, d = uniforms.shape
        out = np.zeros(d, dtype=np.int64)
        for i in range(n):
            for j in range(d):
                out[j] += uniforms[i, j] < q
            v = values[i]
            out[v] += np.int64(true_u[i] < p) - np.int64(uniforms[i, v] < q)
        return out

    @njit(cache=True)
    def _he_sum_accumulate(noisy, values):
        # numpy's axis-0 reduce: +0.0-initialized accumulator, rows added
        # in order. Zero-init (not first-row assignment) is what makes a
        # lone -0.0 column sum to +0.0 exactly like numpy; all other
        # cases are unchanged (0.0 + x == x bitwise for nonzero x).
        n, d = noisy.shape
        out = np.zeros(d, dtype=np.float64)
        for i in range(n):
            v = values[i]
            for j in range(d):
                x = noisy[i, j]
                if j == v:
                    x += 1.0
                out[j] += x
        return out

    @njit(cache=True)
    def _he_threshold_accumulate(noisy, values, threshold):
        n, d = noisy.shape
        out = np.zeros(d, dtype=np.int64)
        for i in range(n):
            v = values[i]
            for j in range(d):
                x = noisy[i, j]
                if j == v:
                    x += 1.0
                out[j] += x > threshold
        return out

    @njit(cache=True)
    def _support_counts(mixed, buckets, g, pow2, cand):
        num_candidates, components = cand.shape
        n = mixed.shape[0]
        out = np.empty(num_candidates, dtype=np.int64)
        mask = g - np.uint64(1)
        for t in range(num_candidates):
            count = 0
            for i in range(n):
                s = mixed[i]
                for j in range(components):
                    s = _sm64(s ^ cand[t, j])
                h = (s & mask) if pow2 else (s % g)
                count += h == buckets[i]
            out[t] = count
        return out

    @njit(cache=True)
    def _popcount_parity(x):
        x = x ^ (x >> np.uint64(32))
        x = x ^ (x >> np.uint64(16))
        x = x ^ (x >> np.uint64(8))
        x = x ^ (x >> np.uint64(4))
        x = x ^ (x >> np.uint64(2))
        x = x ^ (x >> np.uint64(1))
        return np.int64(x & np.uint64(1))

    @njit(cache=True)
    def _hr_apply(rows, values, keep_u, p):
        n = rows.shape[0]
        out = np.empty(n, dtype=np.int64)
        for i in range(n):
            m = np.uint64(rows[i]) & np.uint64(values[i] + 1)
            truth = 1 - 2 * _popcount_parity(m)
            out[i] = truth if keep_u[i] < p else -truth
        return out

    @njit(cache=True)
    def _hr_supports(rows, bits, domain_size):
        n = rows.shape[0]
        out = np.zeros(domain_size, dtype=np.int64)
        for i in range(n):
            row = np.uint64(rows[i])
            bit = np.int64(bits[i])
            for v in range(domain_size):
                m = row & np.uint64(v + 1)
                out[v] += bit * (1 - 2 * _popcount_parity(m))
        return out

    @njit(cache=True)
    def _sw_transform(v, close, close_draws, far_draws, b, width, buckets):
        n = v.shape[0]
        out = np.zeros(buckets, dtype=np.int64)
        ci = 0
        fi = 0
        for i in range(n):
            if close[i]:
                r = v[i] + close_draws[ci]
                ci += 1
            else:
                u = far_draws[fi]
                fi += 1
                fv = v[i]
                r = (-b + u) if u < fv else (fv + b + (u - fv))
            f = np.floor((r + b) / width)
            if not (f >= 0.0):
                idx = 0
            elif f >= buckets:
                idx = buckets - 1
            else:
                idx = np.int64(f)
            out[idx] += 1
        return out

    @njit(cache=True)
    def _fold_i64(stacked):
        k, m = stacked.shape
        out = stacked[0].copy()
        for a in range(1, k):
            for j in range(m):
                out[j] += stacked[a, j]
        return out

    @njit(cache=True)
    def _fold_f64(stacked):
        k, m = stacked.shape
        out = stacked[0].copy()
        for a in range(1, k):
            for j in range(m):
                out[j] += stacked[a, j]
        return out

    def grr_apply(values, keep_uniforms, others, p):
        return _grr_apply(values, keep_uniforms, others, float(p))

    def ue_accumulate(uniforms, values, true_uniforms, p, q):
        return _ue_accumulate(uniforms, values, true_uniforms, float(p),
                              float(q))

    def he_sum_accumulate(noisy, values):
        return _he_sum_accumulate(noisy, values)

    def he_threshold_accumulate(noisy, values, threshold):
        return _he_threshold_accumulate(noisy, values, float(threshold))

    def support_counts(mixed_seeds, buckets, hash_range, candidates,
                       tile_bytes):
        g = np.uint64(hash_range)
        pow2 = hash_range & (hash_range - 1) == 0
        return _support_counts(mixed_seeds, buckets, g, pow2, candidates)

    def hr_apply(rows, values, keep_uniforms, p):
        return _hr_apply(rows, values, keep_uniforms, float(p))

    def hr_supports(rows, bits, domain_size):
        return _hr_supports(rows, bits, int(domain_size))

    def sw_transform(v, close, close_draws, far_draws, b, width, buckets):
        return _sw_transform(v, close, close_draws, far_draws, float(b),
                             float(width), int(buckets))

    def fold_arrays(arrays):
        first = arrays[0]
        uniform = first.dtype in (np.dtype(np.int64), np.dtype(np.float64)) \
            and all(a.dtype == first.dtype and a.shape == first.shape
                    for a in arrays[1:])
        if not uniform:
            return numpy_impl.fold_arrays(arrays)
        stacked = np.stack([a.reshape(-1) for a in arrays])
        fn = _fold_i64 if first.dtype == np.int64 else _fold_f64
        return fn(stacked).reshape(first.shape)


def kernels() -> Dict[str, Callable]:
    """Return every kernel this backend implements; raises when numba is
    missing so the dispatch layer records the failure and falls back."""
    if numba is None:
        raise RuntimeError(f"numba unavailable: {_import_error}")
    return {
        "grr_apply": grr_apply,
        "ue_accumulate": ue_accumulate,
        "he_sum_accumulate": he_sum_accumulate,
        "he_threshold_accumulate": he_threshold_accumulate,
        "support_counts": support_counts,
        "hr_apply": hr_apply,
        "hr_supports": hr_supports,
        "sw_transform": sw_transform,
        "fold_arrays": fold_arrays,
    }
