"""Compiled C backend: runtime-compiled kernels loaded through ctypes.

This backend exists because the bench hosts have a C toolchain but not
numba: the kernel source below is compiled once per machine (``cc -O3
-fPIC -shared``) into a content-addressed shared library under a cache
directory, then loaded with :mod:`ctypes`. Compilation is concurrency-safe
(build to a private temp file, ``os.replace`` into place) and amortized —
every later process, including pool workers, just dlopens the cached
``.so``.

Bit-identity with :mod:`repro.fo.kernels.numpy_impl` is a hard contract:

* Integer kernels perform the identical modular arithmetic (the splitmix64
  chain is the same three multiply-xor-shift rounds numpy evaluates).
* Floating-point kernels accumulate in the exact order numpy's axis-0
  reduce does (first row initializes, later rows add sequentially), and
  the library is compiled with ``-ffp-contract=off`` and *without*
  ``-ffast-math``, so the compiler may neither fuse multiply-adds nor
  reassociate sums.

Every function here assumes the dispatch layer already normalized its
inputs (dtype, C-contiguity, matching lengths); see
:mod:`repro.fo.kernels`.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from typing import Callable, Dict, Optional

import numpy as np

from repro.fo.kernels import numpy_impl

_C_SOURCE = r"""
#include <math.h>
#include <stdint.h>

static inline uint64_t repro_sm64(uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

void repro_grr_apply(const int64_t *values, const double *keep_u,
                     const int64_t *others, double p, int64_t n,
                     int64_t *out) {
    for (int64_t i = 0; i < n; i++) {
        int64_t other = others[i] + (others[i] >= values[i]);
        out[i] = (keep_u[i] < p) ? values[i] : other;
    }
}

void repro_ue_accumulate(const double *uniforms, const int64_t *values,
                         const double *true_u, double p, double q,
                         int64_t n, int64_t d, int64_t *out) {
    for (int64_t j = 0; j < d; j++) out[j] = 0;
    for (int64_t i = 0; i < n; i++) {
        const double *row = uniforms + i * d;
        for (int64_t j = 0; j < d; j++) out[j] += row[j] < q;
        int64_t v = values[i];
        out[v] += (int64_t)(true_u[i] < p) - (int64_t)(row[v] < q);
    }
}

void repro_he_sum_accumulate(const double *noisy, const int64_t *values,
                             int64_t n, int64_t d, double *out) {
    /* numpy's axis-0 reduce: a +0.0-initialized accumulator with rows
       added in order. Zero-init (not first-row assignment) matters for
       bit-identity: a lone -0.0 column must sum to +0.0 exactly as
       numpy's identity-initialized reduce does; every other case is
       unchanged because 0.0 + x == x bitwise for nonzero x. */
    for (int64_t j = 0; j < d; j++) out[j] = 0.0;
    for (int64_t i = 0; i < n; i++) {
        const double *row = noisy + i * d;
        int64_t v = values[i];
        for (int64_t j = 0; j < d; j++) {
            double x = row[j];
            if (j == v) x += 1.0;
            out[j] += x;
        }
    }
}

void repro_he_threshold_accumulate(const double *noisy,
                                   const int64_t *values, double threshold,
                                   int64_t n, int64_t d, int64_t *out) {
    for (int64_t j = 0; j < d; j++) out[j] = 0;
    for (int64_t i = 0; i < n; i++) {
        const double *row = noisy + i * d;
        int64_t v = values[i];
        for (int64_t j = 0; j < d; j++) {
            double x = row[j];
            if (j == v) x += 1.0;
            out[j] += x > threshold;
        }
    }
}

void repro_support_counts(const uint64_t *mixed, const uint64_t *buckets,
                          uint64_t g, int64_t pow2, const uint64_t *cand,
                          int64_t num_candidates, int64_t components,
                          int64_t n, int64_t *out) {
    uint64_t mask = g - 1;
    for (int64_t t = 0; t < num_candidates; t++) {
        const uint64_t *c = cand + t * components;
        int64_t count = 0;
        for (int64_t i = 0; i < n; i++) {
            uint64_t s = mixed[i];
            for (int64_t j = 0; j < components; j++)
                s = repro_sm64(s ^ c[j]);
            uint64_t h = pow2 ? (s & mask) : (s % g);
            count += h == buckets[i];
        }
        out[t] = count;
    }
}

void repro_hr_apply(const int64_t *rows, const int64_t *values,
                    const double *keep_u, double p, int64_t n,
                    int64_t *out) {
    for (int64_t i = 0; i < n; i++) {
        uint64_t m = (uint64_t)rows[i] & (uint64_t)(values[i] + 1);
        int64_t truth = 1 - 2 * (int64_t)(__builtin_popcountll(m) & 1);
        out[i] = (keep_u[i] < p) ? truth : -truth;
    }
}

void repro_hr_supports(const int64_t *rows, const int8_t *bits, int64_t n,
                       int64_t d, int64_t *out) {
    for (int64_t v = 0; v < d; v++) out[v] = 0;
    for (int64_t i = 0; i < n; i++) {
        uint64_t row = (uint64_t)rows[i];
        int64_t bit = bits[i];
        for (int64_t v = 0; v < d; v++) {
            uint64_t m = row & (uint64_t)(v + 1);
            out[v] += bit * (1 - 2 * (int64_t)(__builtin_popcountll(m) & 1));
        }
    }
}

void repro_sw_transform(const double *v, const uint8_t *close,
                        const double *close_draws, const double *far_draws,
                        double b, double width, int64_t buckets, int64_t n,
                        int64_t *out) {
    for (int64_t t = 0; t < buckets; t++) out[t] = 0;
    int64_t ci = 0, fi = 0;
    for (int64_t i = 0; i < n; i++) {
        double r;
        if (close[i]) {
            r = v[i] + close_draws[ci++];
        } else {
            double u = far_draws[fi++];
            double fv = v[i];
            r = (u < fv) ? (-b + u) : (fv + b + (u - fv));
        }
        double f = floor((r + b) / width);
        int64_t idx;
        if (!(f >= 0.0)) idx = 0;
        else if (f >= (double)buckets) idx = buckets - 1;
        else idx = (int64_t)f;
        out[idx] += 1;
    }
}

void repro_fold_i64(const int64_t **arrs, int64_t k, int64_t m,
                    int64_t *out) {
    const int64_t *first = arrs[0];
    for (int64_t j = 0; j < m; j++) out[j] = first[j];
    for (int64_t a = 1; a < k; a++) {
        const int64_t *src = arrs[a];
        for (int64_t j = 0; j < m; j++) out[j] += src[j];
    }
}

void repro_fold_f64(const double **arrs, int64_t k, int64_t m,
                    double *out) {
    const double *first = arrs[0];
    for (int64_t j = 0; j < m; j++) out[j] = first[j];
    for (int64_t a = 1; a < k; a++) {
        const double *src = arrs[a];
        for (int64_t j = 0; j < m; j++) out[j] += src[j];
    }
}
"""

#: no FMA contraction, no fast-math: float adds must round exactly like
#: numpy's, one at a time, in order
_CFLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math")

_SOURCE_TAG = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]

_lock = threading.RLock()
_lib: Optional[ctypes.CDLL] = None
_load_error: Optional[str] = None


def _cache_dir() -> str:
    configured = os.environ.get("REPRO_KERNEL_CACHE", "").strip()
    if configured:
        return configured
    uid = os.getuid() if hasattr(os, "getuid") else "any"
    return os.path.join(tempfile.gettempdir(), f"repro-kernels-{uid}")


def _lib_path() -> str:
    return os.path.join(_cache_dir(), f"repro_kernels_{_SOURCE_TAG}.so")


def _compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def available() -> bool:
    """Cheap availability probe: a cached build or a usable compiler."""
    return os.path.exists(_lib_path()) or _compiler() is not None


def load_error() -> Optional[str]:
    """Why the backend is unusable (``None`` while healthy/unloaded)."""
    return _load_error


def _compile() -> str:
    compiler = _compiler()
    if compiler is None:
        raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
    cache = _cache_dir()
    os.makedirs(cache, exist_ok=True)
    src = os.path.join(cache, f"repro_kernels_{_SOURCE_TAG}.c")
    with open(src, "w") as handle:
        handle.write(_C_SOURCE)
    # Private temp output + atomic rename: concurrent processes may race
    # to build the same library; whoever finishes last wins harmlessly.
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
    os.close(fd)
    try:
        subprocess.run(
            [compiler, *_CFLAGS, "-o", tmp, src, "-lm"],
            check=True, capture_output=True, text=True, timeout=120)
        os.replace(tmp, _lib_path())
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return _lib_path()


def _bind(lib: ctypes.CDLL) -> None:
    c_double, c_int64, c_void_p = (ctypes.c_double, ctypes.c_int64,
                                   ctypes.c_void_p)
    signatures = {
        "repro_grr_apply": (c_void_p, c_void_p, c_void_p, c_double,
                            c_int64, c_void_p),
        "repro_ue_accumulate": (c_void_p, c_void_p, c_void_p, c_double,
                                c_double, c_int64, c_int64, c_void_p),
        "repro_he_sum_accumulate": (c_void_p, c_void_p, c_int64, c_int64,
                                    c_void_p),
        "repro_he_threshold_accumulate": (c_void_p, c_void_p, c_double,
                                          c_int64, c_int64, c_void_p),
        "repro_support_counts": (c_void_p, c_void_p, ctypes.c_uint64,
                                 c_int64, c_void_p, c_int64, c_int64,
                                 c_int64, c_void_p),
        "repro_hr_apply": (c_void_p, c_void_p, c_void_p, c_double, c_int64,
                           c_void_p),
        "repro_hr_supports": (c_void_p, c_void_p, c_int64, c_int64,
                              c_void_p),
        "repro_sw_transform": (c_void_p, c_void_p, c_void_p, c_void_p,
                               c_double, c_double, c_int64, c_int64,
                               c_void_p),
        "repro_fold_i64": (c_void_p, c_int64, c_int64, c_void_p),
        "repro_fold_f64": (c_void_p, c_int64, c_int64, c_void_p),
    }
    for name, argtypes in signatures.items():
        fn = getattr(lib, name)
        fn.argtypes = list(argtypes)
        fn.restype = None


def _load() -> ctypes.CDLL:
    global _lib, _load_error
    with _lock:
        if _lib is not None:
            return _lib
        if _load_error is not None:
            raise RuntimeError(_load_error)
        try:
            path = _lib_path()
            if not os.path.exists(path):
                path = _compile()
            lib = ctypes.CDLL(path)
            _bind(lib)
        except subprocess.CalledProcessError as exc:
            _load_error = (f"kernel compile failed "
                           f"({exc.returncode}): {exc.stderr!s:.500}")
            raise RuntimeError(_load_error) from exc
        except Exception as exc:
            _load_error = f"{type(exc).__name__}: {exc}"
            raise
        _lib = lib
        return lib


def reset_for_tests() -> None:
    """Forget the loaded library and any recorded failure (test hook)."""
    global _lib, _load_error
    with _lock:
        _lib = None
        _load_error = None


# ---------------------------------------------------------------------------
# Python wrappers with the unified kernel signatures. Inputs arrive
# normalized; each wrapper allocates the output and hands raw pointers to
# the library.
# ---------------------------------------------------------------------------


def _ptr(array: np.ndarray) -> int:
    return array.ctypes.data


def grr_apply(values, keep_uniforms, others, p):
    out = np.empty(len(values), dtype=np.int64)
    _load().repro_grr_apply(_ptr(values), _ptr(keep_uniforms), _ptr(others),
                            float(p), len(values), _ptr(out))
    return out


def ue_accumulate(uniforms, values, true_uniforms, p, q):
    n, d = uniforms.shape
    out = np.empty(d, dtype=np.int64)
    _load().repro_ue_accumulate(_ptr(uniforms), _ptr(values),
                                _ptr(true_uniforms), float(p), float(q),
                                n, d, _ptr(out))
    return out


def he_sum_accumulate(noisy, values):
    n, d = noisy.shape
    out = np.empty(d, dtype=np.float64)
    _load().repro_he_sum_accumulate(_ptr(noisy), _ptr(values), n, d,
                                    _ptr(out))
    return out


def he_threshold_accumulate(noisy, values, threshold):
    n, d = noisy.shape
    out = np.empty(d, dtype=np.int64)
    _load().repro_he_threshold_accumulate(_ptr(noisy), _ptr(values),
                                          float(threshold), n, d, _ptr(out))
    return out


def support_counts(mixed_seeds, buckets, hash_range, candidates,
                   tile_bytes):
    # The fused per-(candidate, user) loop never materializes tile
    # matrices, so tile_bytes (the numpy kernel's scratch cap) is moot.
    num_candidates, components = candidates.shape
    out = np.empty(num_candidates, dtype=np.int64)
    pow2 = 1 if hash_range & (hash_range - 1) == 0 else 0
    _load().repro_support_counts(_ptr(mixed_seeds), _ptr(buckets),
                                 hash_range, pow2, _ptr(candidates),
                                 num_candidates, components,
                                 len(mixed_seeds), _ptr(out))
    return out


def hr_apply(rows, values, keep_uniforms, p):
    out = np.empty(len(rows), dtype=np.int64)
    _load().repro_hr_apply(_ptr(rows), _ptr(values), _ptr(keep_uniforms),
                           float(p), len(rows), _ptr(out))
    return out


def hr_supports(rows, bits, domain_size):
    out = np.empty(domain_size, dtype=np.int64)
    _load().repro_hr_supports(_ptr(rows), _ptr(bits), len(rows),
                              domain_size, _ptr(out))
    return out


def sw_transform(v, close, close_draws, far_draws, b, width, buckets):
    out = np.empty(buckets, dtype=np.int64)
    _load().repro_sw_transform(_ptr(v), _ptr(close.view(np.uint8)),
                               _ptr(close_draws), _ptr(far_draws),
                               float(b), float(width), buckets, len(v),
                               _ptr(out))
    return out


def fold_arrays(arrays):
    first = arrays[0]
    uniform = first.dtype in (np.dtype(np.int64), np.dtype(np.float64)) \
        and all(a.dtype == first.dtype and a.shape == first.shape
                for a in arrays[1:])
    if not uniform:
        # Mixed/exotic dtypes (third-party reports): numpy handles them.
        return numpy_impl.fold_arrays(arrays)
    lib = _load()
    fn = (lib.repro_fold_i64 if first.dtype == np.int64
          else lib.repro_fold_f64)
    out = np.empty_like(first)
    pointers = (ctypes.c_void_p * len(arrays))(
        *[a.ctypes.data for a in arrays])
    fn(pointers, len(arrays), first.size, _ptr(out))
    return out


def kernels() -> Dict[str, Callable]:
    """Load (compiling if needed) and return every kernel this backend
    implements. Raises when no compiler/library is usable; the dispatch
    layer records the failure and falls back to numpy."""
    _load()
    return {
        "grr_apply": grr_apply,
        "ue_accumulate": ue_accumulate,
        "he_sum_accumulate": he_sum_accumulate,
        "he_threshold_accumulate": he_threshold_accumulate,
        "support_counts": support_counts,
        "hr_apply": hr_apply,
        "hr_supports": hr_supports,
        "sw_transform": sw_transform,
        "fold_arrays": fold_arrays,
    }
