"""Compiled-kernel dispatch with a guaranteed numpy fallback.

The hot loops of every frequency oracle — perturb-apply, unary-encoding
accumulation, support-counting sweeps, SW bucketing, merge folds — are
defined once in :mod:`repro.fo.kernels.numpy_impl` and optionally
*replaced* by a compiled implementation at call time:

========  =====================================================
backend   provided by
========  =====================================================
numba     :mod:`numba_impl` — ``@njit(cache=True)``; needs the
          ``speed`` packaging extra
cc        :mod:`c_impl` — C source compiled at first use with the
          host toolchain (``cc``/``gcc``/``clang``), cached as a
          shared library, loaded via ctypes
numpy     :mod:`numpy_impl` — always present, always last
========  =====================================================

Selection is *per kernel*, lazy, and failure-proof: backends are tried
in preference order (numba → cc → numpy) and any backend that fails to
import, compile, or load is recorded in :func:`backend_report` and
skipped — the numpy implementation can never fail to be selected, so the
library never *requires* a compiler.

Environment switches (read at each resolution, so subprocess tests and
monkeypatching both work):

* ``REPRO_NO_JIT=1`` (also ``true``/``yes``/``on``) — numpy only.
* ``REPRO_JIT=<backend>`` — try exactly that backend (then numpy).
  Unknown names are recorded as errors and degrade to numpy.

**Bit-identity contract.** Every compiled kernel returns bit-identical
output to its numpy reference on every input: kernels are pure
transforms of *pre-drawn* random arrays (the orchestration layer owns
the single ``np.random.Generator`` and the draw order), integer kernels
share exact modular arithmetic, and float kernels replicate numpy's
sequential accumulation order without FMA or reassociation. Property
tests in ``tests/test_kernels.py`` enforce this per kernel and
end-to-end. Consequently pipeline output remains a pure function of
``(seed, chunk_size)`` regardless of backend — switching backends is
never observable in results, only in wall time.

Call :func:`warm` (done automatically by
:func:`repro.fo.adaptive.make_oracle` and by process-pool worker
initializers) to force compilation/loading before timed work.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.errors import ProtocolError
from repro.fo.hashing import DEFAULT_TILE_BYTES
from repro.fo.kernels import c_impl, numba_impl, numpy_impl

#: canonical kernel set — numpy implements all of them by construction
KERNEL_NAMES: Tuple[str, ...] = tuple(numpy_impl.KERNELS)

#: resolution order; numpy is the mandatory terminal fallback
BACKEND_PREFERENCE: Tuple[str, ...] = ("numba", "cc", "numpy")

_TRUTHY = frozenset({"1", "true", "yes", "on"})

_lock = threading.RLock()
_table: Dict[str, Tuple[str, Callable]] = {}
_backend_kernels: Dict[str, Dict[str, Callable]] = {}
_errors: Dict[str, str] = {}
_warmed: set = set()
_override: Optional[str] = None


def _no_jit() -> bool:
    return os.environ.get("REPRO_NO_JIT", "").strip().lower() in _TRUTHY


def _candidates() -> Tuple[str, ...]:
    if _override is not None:
        return ("numpy",) if _override == "numpy" else (_override, "numpy")
    if _no_jit():
        return ("numpy",)
    forced = os.environ.get("REPRO_JIT", "").strip().lower()
    if forced:
        if forced in BACKEND_PREFERENCE:
            return ("numpy",) if forced == "numpy" else (forced, "numpy")
        _errors.setdefault(
            forced, f"unknown backend {forced!r} in REPRO_JIT "
                    f"(known: {', '.join(BACKEND_PREFERENCE)})")
        return ("numpy",)
    return BACKEND_PREFERENCE


def _load_backend(backend: str) -> Dict[str, Callable]:
    cached = _backend_kernels.get(backend)
    if cached is not None:
        return cached
    if backend == "numpy":
        table = dict(numpy_impl.KERNELS)
    elif backend == "cc":
        table = c_impl.kernels()
    elif backend == "numba":
        table = numba_impl.kernels()
    else:
        raise RuntimeError(f"unknown kernel backend {backend!r}")
    _backend_kernels[backend] = table
    return table


def _resolve(name: str) -> Tuple[str, Callable]:
    with _lock:
        cached = _table.get(name)
        if cached is not None:
            return cached
        for backend in _candidates():
            try:
                fn = _load_backend(backend)[name]
            except Exception as exc:
                _errors[backend] = f"{type(exc).__name__}: {exc}"
                continue
            _table[name] = (backend, fn)
            return backend, fn
        # Unreachable: loading the numpy table cannot raise and it holds
        # every KERNEL_NAMES entry. Kept as a hard stop for typos.
        raise ProtocolError(f"no backend implements kernel {name!r}")


# ---------------------------------------------------------------------------
# Introspection / control surface
# ---------------------------------------------------------------------------


def available_backends() -> Tuple[str, ...]:
    """Backends that actually load on this host, in preference order
    (numpy always last). Attempts the load, so this may compile."""
    out = []
    with _lock:
        for backend in BACKEND_PREFERENCE:
            if backend == "numpy":
                continue
            try:
                _load_backend(backend)
            except Exception as exc:
                _errors[backend] = f"{type(exc).__name__}: {exc}"
                continue
            out.append(backend)
    out.append("numpy")
    return tuple(out)


def active_backends() -> Dict[str, str]:
    """Map every kernel name to the backend that will serve it."""
    return {name: _resolve(name)[0] for name in KERNEL_NAMES}


def backend_report() -> Dict[str, object]:
    """Diagnostic snapshot: active selection, recorded failures, env."""
    with _lock:
        errors = dict(_errors)
    return {
        "active": active_backends(),
        "errors": errors,
        "override": _override,
        "no_jit": _no_jit(),
    }


@contextlib.contextmanager
def use_backend(backend: str):
    """Force every kernel onto ``backend`` (numpy remains the safety
    net) within the block. Test/bench hook; not thread-safe against
    concurrent resolution from other threads."""
    global _override
    if backend not in BACKEND_PREFERENCE:
        raise ProtocolError(
            f"unknown kernel backend {backend!r}; "
            f"known: {', '.join(BACKEND_PREFERENCE)}")
    with _lock:
        previous = _override
        _override = backend
        _table.clear()
        _warmed.clear()
    try:
        yield
    finally:
        with _lock:
            _override = previous
            _table.clear()
            _warmed.clear()


def reset_for_tests() -> None:
    """Drop all cached resolutions, warm marks, and recorded errors."""
    global _override
    with _lock:
        _override = None
        _table.clear()
        _backend_kernels.clear()
        _errors.clear()
        _warmed.clear()


# ---------------------------------------------------------------------------
# Warm-up: force compile/load cost outside timed work
# ---------------------------------------------------------------------------


def _sample_calls() -> Dict[str, Callable[[], None]]:
    i64 = np.int64
    f64 = np.float64

    def _grr():
        grr_apply(np.array([0, 1], i64), np.array([0.1, 0.9]),
                  np.array([0, 0], i64), 0.5)

    def _ue():
        ue_accumulate(np.array([[0.1, 0.6, 0.3], [0.8, 0.2, 0.4]], f64),
                      np.array([0, 2], i64), np.array([0.1, 0.9]),
                      0.5, 0.25)

    def _he_sum():
        he_sum_accumulate(np.zeros((2, 3), f64), np.array([0, 1], i64))

    def _he_thr():
        he_threshold_accumulate(np.zeros((2, 3), f64),
                                np.array([0, 1], i64), 0.5)

    def _support():
        support_counts(np.array([1, 2], np.uint64),
                       np.array([0, 1], np.uint64), 4,
                       np.arange(2, dtype=np.uint64), DEFAULT_TILE_BYTES)

    def _hr():
        hr_apply(np.array([1, 2], i64), np.array([0, 1], i64),
                 np.array([0.1, 0.9]), 0.6)

    def _hr_sup():
        hr_supports(np.array([1, 2], i64),
                    np.array([1, -1], np.int8), 3)

    def _sw():
        sw_transform(np.array([0.2, 0.8]), np.array([True, False]),
                     np.array([0.05]), np.array([0.3]), 0.25, 0.05, 30)

    def _fold():
        fold_arrays([np.arange(3, dtype=i64), np.arange(3, dtype=i64)])
        fold_arrays([np.linspace(0, 1, 3), np.linspace(1, 2, 3)])

    return {
        "grr_apply": _grr,
        "ue_accumulate": _ue,
        "he_sum_accumulate": _he_sum,
        "he_threshold_accumulate": _he_thr,
        "support_counts": _support,
        "hr_apply": _hr,
        "hr_supports": _hr_sup,
        "sw_transform": _sw,
        "fold_arrays": _fold,
    }


def warm(names: Optional[Iterable[str]] = None) -> None:
    """Resolve and exercise the named kernels (all by default) on tiny
    inputs so compilation, shared-library loading, and dispatch-table
    population happen *now* rather than inside a timed or latency-bound
    region. Idempotent per (backend-selection, kernel)."""
    wanted = tuple(names) if names is not None else KERNEL_NAMES
    samples = _sample_calls()
    for name in wanted:
        if name in _warmed:
            continue
        if name not in samples:
            raise ProtocolError(f"unknown kernel {name!r}")
        samples[name]()
        with _lock:
            _warmed.add(name)


# ---------------------------------------------------------------------------
# Public kernels: validate + normalize, then dispatch
# ---------------------------------------------------------------------------


def _c(array, dtype) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=dtype)


def _check_values(values: np.ndarray, d: int, kernel: str) -> None:
    if len(values) and (values.min() < 0 or values.max() >= d):
        raise ProtocolError(
            f"{kernel}: encoded values out of range [0, {d})")


def grr_apply(values, keep_uniforms, others, p):
    """GRR response given drawn randomness: keep ``values[i]`` when
    ``keep_uniforms[i] < p``, else the drawn other value (shifted past
    the true one)."""
    values = _c(values, np.int64)
    keep_uniforms = _c(keep_uniforms, np.float64)
    others = _c(others, np.int64)
    if not len(values) == len(keep_uniforms) == len(others):
        raise ProtocolError("grr_apply: input lengths disagree")
    return _resolve("grr_apply")[1](values, keep_uniforms, others, float(p))


def ue_accumulate(uniforms, values, true_uniforms, p, q):
    """Unary-encoding per-column 1-counts for one block of users."""
    uniforms = _c(uniforms, np.float64)
    values = _c(values, np.int64)
    true_uniforms = _c(true_uniforms, np.float64)
    if uniforms.ndim != 2:
        raise ProtocolError("ue_accumulate: uniforms must be 2-D")
    n, d = uniforms.shape
    if not n == len(values) == len(true_uniforms):
        raise ProtocolError("ue_accumulate: input lengths disagree")
    _check_values(values, d, "ue_accumulate")
    return _resolve("ue_accumulate")[1](uniforms, values, true_uniforms,
                                        float(p), float(q))


def he_sum_accumulate(noisy, values):
    """SHE per-column sums for one block (``noisy`` may be clobbered)."""
    noisy = _c(noisy, np.float64)
    values = _c(values, np.int64)
    if noisy.ndim != 2 or noisy.shape[0] != len(values):
        raise ProtocolError("he_sum_accumulate: shape mismatch")
    _check_values(values, noisy.shape[1], "he_sum_accumulate")
    return _resolve("he_sum_accumulate")[1](noisy, values)


def he_threshold_accumulate(noisy, values, threshold):
    """THE per-column above-threshold counts for one block (``noisy``
    may be clobbered)."""
    noisy = _c(noisy, np.float64)
    values = _c(values, np.int64)
    if noisy.ndim != 2 or noisy.shape[0] != len(values):
        raise ProtocolError("he_threshold_accumulate: shape mismatch")
    _check_values(values, noisy.shape[1], "he_threshold_accumulate")
    return _resolve("he_threshold_accumulate")[1](noisy, values,
                                                  float(threshold))


def support_counts(mixed_seeds, buckets, hash_range, candidates,
                   tile_bytes=DEFAULT_TILE_BYTES):
    """OLH-family support counting: for each candidate row, how many
    users' hash chains land in their reported bucket. Mirrors
    :func:`repro.fo.hashing.tiled_support_counts` validation."""
    hash_range = int(hash_range)
    if hash_range < 1:
        raise ProtocolError("support_counts: hash_range must be >= 1")
    if int(tile_bytes) < 8:
        raise ProtocolError("support_counts: tile_bytes must be >= 8")
    mixed_seeds = _c(mixed_seeds, np.uint64)
    buckets = _c(buckets, np.uint64)
    candidates = _c(candidates, np.uint64)
    if mixed_seeds.ndim != 1 or buckets.shape != mixed_seeds.shape:
        raise ProtocolError(
            "support_counts: mixed_seeds/buckets must be equal-length 1-D")
    if candidates.ndim == 1:
        candidates = candidates.reshape(-1, 1)
    if candidates.ndim != 2 or candidates.shape[1] < 1:
        raise ProtocolError(
            "support_counts: candidates must be (T,) or (T, k>=1)")
    return _resolve("support_counts")[1](mixed_seeds, buckets, hash_range,
                                         candidates, int(tile_bytes))


def hr_apply(rows, values, keep_uniforms, p):
    """Hadamard-response ±1 bits given drawn randomness."""
    rows = _c(rows, np.int64)
    values = _c(values, np.int64)
    keep_uniforms = _c(keep_uniforms, np.float64)
    if not len(rows) == len(values) == len(keep_uniforms):
        raise ProtocolError("hr_apply: input lengths disagree")
    return _resolve("hr_apply")[1](rows, values, keep_uniforms, float(p))


def hr_supports(rows, bits, domain_size):
    """HR support sweep ``out[v] = Σ_i bits[i]·H(rows[i], v+1)``."""
    rows = _c(rows, np.int64)
    bits = _c(bits, np.int8)
    domain_size = int(domain_size)
    if len(rows) != len(bits):
        raise ProtocolError("hr_supports: input lengths disagree")
    if domain_size < 0:
        raise ProtocolError("hr_supports: domain_size must be >= 0")
    return _resolve("hr_supports")[1](rows, bits, domain_size)


def sw_transform(v, close, close_draws, far_draws, b, width, buckets):
    """Square-wave report synthesis + histogram bucketing given drawn
    randomness (draw arrays are consumed in user order)."""
    v = _c(v, np.float64)
    close = _c(close, np.bool_)
    close_draws = _c(close_draws, np.float64)
    far_draws = _c(far_draws, np.float64)
    buckets = int(buckets)
    if len(close) != len(v):
        raise ProtocolError("sw_transform: close mask length disagrees")
    n_close = int(close.sum())
    if len(close_draws) != n_close or \
            len(far_draws) != len(v) - n_close:
        raise ProtocolError("sw_transform: draw array lengths disagree "
                            "with the close mask")
    if buckets < 1:
        raise ProtocolError("sw_transform: buckets must be >= 1")
    return _resolve("sw_transform")[1](v, close, close_draws, far_draws,
                                       float(b), float(width), buckets)


def fold_arrays(arrays):
    """Elementwise left fold ``((a0 + a1) + a2) + …`` of same-shape
    arrays — the merge monoid's sufficient-statistic addition."""
    arrays = [np.ascontiguousarray(a) for a in arrays]
    if not arrays:
        raise ProtocolError("fold_arrays: need at least one array")
    shape = arrays[0].shape
    if any(a.shape != shape for a in arrays[1:]):
        raise ProtocolError("fold_arrays: array shapes disagree")
    return _resolve("fold_arrays")[1](arrays)


__all__ = [
    "KERNEL_NAMES", "BACKEND_PREFERENCE",
    "available_backends", "active_backends", "backend_report",
    "use_backend", "warm", "reset_for_tests",
    "grr_apply", "ue_accumulate", "he_sum_accumulate",
    "he_threshold_accumulate", "support_counts", "hr_apply",
    "hr_supports", "sw_transform", "fold_arrays",
]
