"""Numpy reference implementations of the compiled kernels.

This module is the **semantic definition** of every kernel in
:mod:`repro.fo.kernels`: the compiled backends (numba, cc) must agree with
these functions *bit for bit* on every input — integer kernels trivially,
floating-point kernels because both sides perform the same elementary
operations in the same order (sequential row accumulation, no FMA
contraction, no reassociation). The dispatch layer guarantees one of
these functions runs whenever no compiled backend is available, so the
library never *requires* a compiler.

Kernels are pure transforms: they receive pre-drawn random arrays from
the orchestration layer and never touch an RNG themselves (the
draw/transform split that keeps output a pure function of
``(seed, chunk_size)`` across backends).

Inputs arrive pre-normalized by the dispatch wrappers (correct dtypes,
C-contiguous); implementations may rely on that.
"""

from __future__ import annotations

import numpy as np

from repro.fo.hashing import tiled_support_counts

#: domain values per vectorized tile of :func:`hr_supports` (bounds peak
#: memory at ``n * _HR_TILE`` int64 entries regardless of domain size)
_HR_TILE = 256


def grr_apply(values: np.ndarray, keep_uniforms: np.ndarray,
              others: np.ndarray, p: float) -> np.ndarray:
    """Apply GRR given the drawn randomness.

    ``out[i] = values[i]`` when ``keep_uniforms[i] < p``, else the drawn
    "other" value shifted past the true one (a uniform draw over the
    ``d − 1`` values ``!= values[i]``). Shared by GRR (domain values) and
    OLH (hashed buckets over ``[0, g)``).
    """
    others = others + (others >= values)
    return np.where(keep_uniforms < p, values, others)


def ue_accumulate(uniforms: np.ndarray, values: np.ndarray,
                  true_uniforms: np.ndarray, p: float,
                  q: float) -> np.ndarray:
    """Unary-encoding bit-flip accumulation (OUE/SUE) for one block.

    Row ``i`` one-hot encodes ``values[i]``; each 0-bit becomes 1 when
    ``uniforms[i, j] < q`` and the 1-bit stays 1 when
    ``true_uniforms[i] < p``. Returns the per-column 1-counts.
    """
    bits = uniforms < q
    bits[np.arange(len(values)), values] = true_uniforms < p
    return bits.sum(axis=0)


def he_sum_accumulate(noisy: np.ndarray,
                      values: np.ndarray) -> np.ndarray:
    """SHE accumulation for one block: add the one-hot, sum the columns.

    ``noisy`` is the drawn ``(n, d)`` Laplace noise matrix; it may be
    clobbered. The column sum is sequential over rows (numpy's axis-0
    reduce), which the compiled backends replicate exactly.
    """
    noisy[np.arange(len(values)), values] += 1.0
    return noisy.sum(axis=0)


def he_threshold_accumulate(noisy: np.ndarray, values: np.ndarray,
                            threshold: float) -> np.ndarray:
    """THE accumulation for one block: one-hot plus noise, count above θ.

    ``noisy`` may be clobbered.
    """
    noisy[np.arange(len(values)), values] += 1.0
    return (noisy > threshold).sum(axis=0)


def support_counts(mixed_seeds: np.ndarray, buckets: np.ndarray,
                   hash_range: int, candidates: np.ndarray,
                   tile_bytes: int) -> np.ndarray:
    """OLH-family support counting: the cache-tiled numpy sweep.

    Delegates to :func:`repro.fo.hashing.tiled_support_counts`, the
    retained reference kernel (PR 1).
    """
    return tiled_support_counts(mixed_seeds, buckets, hash_range,
                                candidates, tile_bytes=tile_bytes)


def _parity(x: np.ndarray) -> np.ndarray:
    """Bit parity of each element of a non-negative int64 array (0 or 1)."""
    x = x ^ (x >> 32)
    x = x ^ (x >> 16)
    x = x ^ (x >> 8)
    x = x ^ (x >> 4)
    x = x ^ (x >> 2)
    x = x ^ (x >> 1)
    return x & 1


def hr_apply(rows: np.ndarray, values: np.ndarray,
             keep_uniforms: np.ndarray, p: float) -> np.ndarray:
    """HR perturbation given the drawn randomness.

    ``truth = H[row, value + 1] = (−1)^popcount(row & (value + 1))``,
    reported as-is when ``keep_uniforms[i] < p``, negated otherwise.
    Returns int64 ±1 bits (the report container narrows to int8).
    """
    truth = 1 - 2 * _parity(rows & (values + 1))
    return np.where(keep_uniforms < p, truth, -truth)


def hr_supports(rows: np.ndarray, bits: np.ndarray,
                domain_size: int) -> np.ndarray:
    """HR support sweep: ``Σ_i bits[i] · H(rows[i], v + 1)`` per value."""
    bits = bits.astype(np.int64)
    out = np.empty(domain_size, dtype=np.int64)
    for start in range(0, domain_size, _HR_TILE):
        cols = np.arange(start + 1,
                         min(start + _HR_TILE, domain_size) + 1,
                         dtype=np.int64)
        signs = 1 - 2 * _parity(rows[:, None] & cols[None, :])
        out[start:start + len(cols)] = bits @ signs
    return out


def sw_transform(v: np.ndarray, close: np.ndarray,
                 close_draws: np.ndarray, far_draws: np.ndarray,
                 b: float, width: float, buckets: int) -> np.ndarray:
    """SW report synthesis and bucketing given the drawn randomness.

    Close reports are ``v + U(−b, b)``; far reports map a unit draw onto
    ``[−b, 1 + b] \\ [v − b, v + b]`` by shifting past the wave window.
    Draw arrays are consumed in row order (matching the fancy-indexed
    assignment semantics the compiled backends replicate with cursors).
    """
    reports = np.empty(len(v))
    reports[close] = v[close] + close_draws
    far = ~close
    far_v = v[far]
    reports[far] = np.where(far_draws < far_v,
                            -b + far_draws,
                            far_v + b + (far_draws - far_v))
    idx = np.floor((reports + b) / width).astype(np.int64)
    idx = np.clip(idx, 0, buckets - 1)
    return np.bincount(idx, minlength=buckets)


def fold_arrays(arrays) -> np.ndarray:
    """Elementwise left fold of same-shape arrays (the merge monoid's
    sufficient-statistic addition): ``((a0 + a1) + a2) + …``."""
    out = np.array(arrays[0], copy=True)
    for a in arrays[1:]:
        out += a
    return out


#: every kernel this backend implements (the full set, by construction)
KERNELS = {
    "grr_apply": grr_apply,
    "ue_accumulate": ue_accumulate,
    "he_sum_accumulate": he_sum_accumulate,
    "he_threshold_accumulate": he_threshold_accumulate,
    "support_counts": support_counts,
    "hr_apply": hr_apply,
    "hr_supports": hr_supports,
    "sw_transform": sw_transform,
    "fold_arrays": fold_arrays,
}
