"""Vectorized seeded hash family for OLH-style protocols.

OLH needs, per user, a hash function ``H: D -> {0..g-1}`` chosen at random
and shared with the aggregator. Reference implementations use xxhash keyed
by a per-user seed; we use a splitmix64 finalizer chain, which is equally
uniform statistically and vectorizes cleanly over numpy ``uint64`` arrays
(overflow wraps, which is exactly the mod-2^64 arithmetic splitmix64 wants).

Values may be multi-component (HIO hashes the tuple of per-attribute interval
indices, whose combined index space can exceed 2^64 states): components are
chained into the mixer one at a time, so no component product is ever formed.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.errors import ProtocolError

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

Component = Union[int, np.ndarray]


def splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, elementwise over a ``uint64`` array.

    Overflow is the point — splitmix64 works modulo 2^64 — so the numpy
    overflow warning (raised for 0-d scalars only) is suppressed.
    """
    x = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = x + _GOLDEN
        x = (x ^ (x >> np.uint64(30))) * _MIX1
        x = (x ^ (x >> np.uint64(27))) * _MIX2
        return x ^ (x >> np.uint64(31))


def chain_hash(seeds: np.ndarray, components: Sequence[Component],
               buckets: int) -> np.ndarray:
    """Hash (seed, value-components) pairs into ``[0, buckets)``.

    Parameters
    ----------
    seeds:
        ``uint64`` array of per-user seeds (or a scalar).
    components:
        The value being hashed, as a sequence of integer components. Each
        component may be a scalar (same value for every seed) or an array
        broadcastable against ``seeds``.
    buckets:
        ``g``, the hash range size.

    Returns
    -------
    ``uint64`` array of bucket indices, broadcast shape of seeds/components.
    """
    if buckets < 1:
        raise ProtocolError(f"hash range must be >= 1, got {buckets}")
    if not components:
        raise ProtocolError("chain_hash needs at least one value component")
    state = splitmix64(np.asarray(seeds, dtype=np.uint64))
    for comp in components:
        comp = np.asarray(comp, dtype=np.uint64)
        state = splitmix64(state ^ comp)
    return state % np.uint64(buckets)


def random_seeds(count: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``count`` independent 64-bit hash seeds."""
    if count < 0:
        raise ProtocolError(f"count must be non-negative, got {count}")
    return rng.integers(0, 2**64, size=count, dtype=np.uint64)


#: Hard cap on the scratch memory :func:`tiled_support_counts` may hold at
#: once. The kernel usually stays far below it (tiles are sized for cache,
#: see ``_TILE_ELEMS``); the cap is the guarantee that a ``d x n`` state
#: matrix is never materialized whole.
DEFAULT_TILE_BYTES = 64 * 1024 * 1024

#: Target elements per work tile. Two uint64 scratch buffers of this size
#: (~0.5 MB each) stay resident in L2/L3 across the splitmix64 chain, which
#: measures ~2x faster than streaming tens-of-MB tiles through DRAM.
_TILE_ELEMS = 64 * 1024

#: Columns (users) per tile: one row of 8192 uint64 is 64 KB, so a whole
#: tile row round-trips through cache, not memory.
_USER_TILE = 8192

_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)


def _splitmix64_inplace(x: np.ndarray, scratch: np.ndarray) -> None:
    """The splitmix64 finalizer, in place over ``x`` (same bits as
    :func:`splitmix64`), using ``scratch`` for the shifted operand so the
    chain allocates nothing."""
    np.add(x, _GOLDEN, out=x)
    np.right_shift(x, _S30, out=scratch)
    np.bitwise_xor(x, scratch, out=x)
    np.multiply(x, _MIX1, out=x)
    np.right_shift(x, _S27, out=scratch)
    np.bitwise_xor(x, scratch, out=x)
    np.multiply(x, _MIX2, out=x)
    np.right_shift(x, _S31, out=scratch)
    np.bitwise_xor(x, scratch, out=x)


def mix_seeds(seeds: np.ndarray) -> np.ndarray:
    """Pre-mix raw hash seeds into the chain's starting state.

    ``chain_hash(seeds, comps, g)`` begins every evaluation with
    ``splitmix64(seeds)``; that mix depends only on the seeds, so a report
    queried repeatedly (OLH estimation, HIO's memoized per-interval queries)
    should compute it once and hand the result to
    :func:`tiled_support_counts`.
    """
    return splitmix64(np.asarray(seeds, dtype=np.uint64))


def tiled_support_counts(mixed_seeds: np.ndarray, buckets: np.ndarray,
                         hash_range: int, candidates: np.ndarray,
                         tile_bytes: int = DEFAULT_TILE_BYTES) -> np.ndarray:
    """Support counts of many candidate values against one report batch.

    For each candidate value ``v`` (row of ``candidates``), counts the
    reports whose seeded hash of ``v`` equals their reported bucket —
    the aggregation primitive of OLH-style protocols. Bit-identical to
    calling :func:`chain_hash` per candidate and comparing, but vectorized
    in 2-D: ``(candidate-block, user-block)`` tiles of splitmix64 state are
    advanced in place one value-component at a time and reduced against the
    buckets, with tiles sized to stay cache-resident and never exceed
    ``tile_bytes``.

    Parameters
    ----------
    mixed_seeds:
        ``mix_seeds(seeds)`` of the report batch, shape ``(n,)``. Passing
        the pre-mixed state (rather than raw seeds) lets callers amortize
        the mix across repeated queries on the same report.
    buckets:
        Reported buckets, shape ``(n,)``, values in ``[0, hash_range)``.
    hash_range:
        ``g``, the hash range size.
    candidates:
        Candidate values: shape ``(T,)`` for single-component values or
        ``(T, k)`` for multi-component (tuple) values, hashed by chaining
        components exactly like :func:`chain_hash`.
    tile_bytes:
        Hard cap on scratch memory: the kernel's two uint64 work buffers
        together never exceed ``max(16, tile_bytes)`` bytes, so a
        ``(T, n)`` state matrix is never materialized at once. Tiles are
        additionally clamped to cache-friendly sizes (~1 MB), which is
        where the kernel is fastest; raising the cap past that changes
        nothing.

    Returns
    -------
    ``int64`` array of shape ``(T,)``: the support count of each candidate.
    """
    if hash_range < 1:
        raise ProtocolError(f"hash range must be >= 1, got {hash_range}")
    if tile_bytes < 8:
        raise ProtocolError(f"tile_bytes must be >= 8, got {tile_bytes}")
    mixed_seeds = np.asarray(mixed_seeds, dtype=np.uint64)
    if mixed_seeds.ndim != 1:
        raise ProtocolError(
            f"mixed_seeds must be 1-D, got shape {mixed_seeds.shape}")
    buckets = np.asarray(buckets, dtype=np.uint64)
    if buckets.shape != mixed_seeds.shape:
        raise ProtocolError(
            f"{len(mixed_seeds)} seeds vs {len(buckets)} buckets")
    cand = np.asarray(candidates, dtype=np.uint64)
    if cand.ndim == 1:
        cand = cand[:, None]
    if cand.ndim != 2 or cand.shape[1] < 1:
        raise ProtocolError(
            f"candidates must be (T,) or (T, k>=1), got shape "
            f"{np.shape(candidates)}")
    num_candidates, num_components = cand.shape
    n = len(mixed_seeds)
    counts = np.zeros(num_candidates, dtype=np.int64)
    if n == 0 or num_candidates == 0:
        return counts
    g = np.uint64(hash_range)
    # g is a power of two for the paper's canonical budgets (ε=1 gives
    # g=4); masking there skips the uint64 division, the single most
    # expensive op in the chain.
    power_of_two = hash_range & (hash_range - 1) == 0
    bit_mask = np.uint64(hash_range - 1)
    # Two uint64 scratch buffers per tile; honor the cap, prefer cache.
    elems = max(1, min(tile_bytes // 16, _TILE_ELEMS))
    user_block = max(1, min(n, _USER_TILE, elems))
    cand_block = max(1, elems // user_block)
    buf = np.empty((cand_block, user_block), dtype=np.uint64)
    tmp = np.empty_like(buf)
    with np.errstate(over="ignore"):
        for ustart in range(0, n, user_block):
            mixed_row = mixed_seeds[ustart:ustart + user_block][None, :]
            bucket_row = buckets[ustart:ustart + user_block][None, :]
            width = mixed_row.shape[1]
            for cstart in range(0, num_candidates, cand_block):
                chunk = cand[cstart:cstart + cand_block]
                state = buf[:len(chunk), :width]
                scratch = tmp[:len(chunk), :width]
                np.bitwise_xor(mixed_row, chunk[:, 0][:, None], out=state)
                _splitmix64_inplace(state, scratch)
                for t in range(1, num_components):
                    np.bitwise_xor(state, chunk[:, t][:, None], out=state)
                    _splitmix64_inplace(state, scratch)
                if power_of_two:
                    np.bitwise_and(state, bit_mask, out=state)
                else:
                    np.mod(state, g, out=state)
                counts[cstart:cstart + len(chunk)] += (
                    state == bucket_row).sum(axis=1)
    return counts
