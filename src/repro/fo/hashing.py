"""Vectorized seeded hash family for OLH-style protocols.

OLH needs, per user, a hash function ``H: D -> {0..g-1}`` chosen at random
and shared with the aggregator. Reference implementations use xxhash keyed
by a per-user seed; we use a splitmix64 finalizer chain, which is equally
uniform statistically and vectorizes cleanly over numpy ``uint64`` arrays
(overflow wraps, which is exactly the mod-2^64 arithmetic splitmix64 wants).

Values may be multi-component (HIO hashes the tuple of per-attribute interval
indices, whose combined index space can exceed 2^64 states): components are
chained into the mixer one at a time, so no component product is ever formed.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.errors import ProtocolError

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

Component = Union[int, np.ndarray]


def splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, elementwise over a ``uint64`` array.

    Overflow is the point — splitmix64 works modulo 2^64 — so the numpy
    overflow warning (raised for 0-d scalars only) is suppressed.
    """
    x = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = x + _GOLDEN
        x = (x ^ (x >> np.uint64(30))) * _MIX1
        x = (x ^ (x >> np.uint64(27))) * _MIX2
        return x ^ (x >> np.uint64(31))


def chain_hash(seeds: np.ndarray, components: Sequence[Component],
               buckets: int) -> np.ndarray:
    """Hash (seed, value-components) pairs into ``[0, buckets)``.

    Parameters
    ----------
    seeds:
        ``uint64`` array of per-user seeds (or a scalar).
    components:
        The value being hashed, as a sequence of integer components. Each
        component may be a scalar (same value for every seed) or an array
        broadcastable against ``seeds``.
    buckets:
        ``g``, the hash range size.

    Returns
    -------
    ``uint64`` array of bucket indices, broadcast shape of seeds/components.
    """
    if buckets < 1:
        raise ProtocolError(f"hash range must be >= 1, got {buckets}")
    if not components:
        raise ProtocolError("chain_hash needs at least one value component")
    state = splitmix64(np.asarray(seeds, dtype=np.uint64))
    for comp in components:
        comp = np.asarray(comp, dtype=np.uint64)
        state = splitmix64(state ^ comp)
    return state % np.uint64(buckets)


def random_seeds(count: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``count`` independent 64-bit hash seeds."""
    if count < 0:
        raise ProtocolError(f"count must be non-negative, got {count}")
    return rng.integers(0, 2**64, size=count, dtype=np.uint64)
