"""Adaptive frequency oracle (paper, Section 5.3).

For a grid with ``L`` cells, AFO reports with whichever registered
adaptive-candidate protocol has the lower analytic variance. With the
built-in GRR/OLH pair this is exactly the paper's Eq. 13:

    Var[Φ_AFO] = min( (e^ε + L − 2), 4 e^ε ) / (e^ε − 1)² · m/n

GRR's variance grows linearly in ``L`` while OLH's is constant, so GRR
wins exactly when ``L − 2 ≤ 3 e^ε`` — small grids and/or generous
budgets. Further candidates (e.g. Hadamard Response) enter the
comparison by registering a spec with ``adaptive_candidate=True``; a
candidate only displaces an earlier-registered one by *strictly* lower
variance, which preserves Eq. 13's tie-break toward GRR.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.fo import kernels
from repro.fo.base import FrequencyOracle
from repro.fo.registry import ADAPTIVE, adaptive_candidates, get


def choose_protocol(epsilon: float, domain_size: int) -> str:
    """The lowest-variance adaptive-candidate protocol for this (ε, L)."""
    best_name, best_variance = None, math.inf
    for spec in adaptive_candidates():
        variance = spec.analytic_variance(epsilon, domain_size, 1)
        if variance < best_variance:
            best_name, best_variance = spec.name, variance
    if best_name is None:
        raise ConfigurationError(
            "no adaptive-candidate protocol is registered")
    return best_name


def make_oracle(protocol: str, epsilon: float,
                domain_size: int) -> FrequencyOracle:
    """Instantiate a registered oracle by name.

    Any registered protocol with a client-side oracle works (see
    :func:`repro.fo.registry.registered_names` for the current set);
    ``protocol="adaptive"`` applies :func:`choose_protocol` first.
    """
    if protocol == ADAPTIVE:
        protocol = choose_protocol(epsilon, domain_size)
    spec = get(protocol)
    if spec.factory is None:
        raise ConfigurationError(
            f"protocol {protocol!r} has no standalone client-side oracle; "
            f"it collects through its interactive fitting path and cannot "
            f"be instantiated with make_oracle()")
    oracle = spec.factory(epsilon, domain_size)
    # Warm this protocol's compiled kernels now: make_oracle is the one
    # choke point every collection path (serial, thread shards, process
    # workers, streaming) builds oracles through, so compile/load cost
    # lands here instead of inside the first timed perturb. Idempotent
    # and cheap once warm.
    kernels.warm(spec.kernels)
    return oracle
