"""Adaptive frequency oracle (paper, Section 5.3).

For a grid with ``L`` cells, AFO reports with whichever of GRR / OLH has the
lower variance (paper Eq. 13):

    Var[Φ_AFO] = min( (e^ε + L − 2), 4 e^ε ) / (e^ε − 1)² · m/n

GRR's variance grows linearly in ``L`` while OLH's is constant, so GRR wins
exactly when ``L − 2 ≤ 3 e^ε`` — small grids and/or generous budgets.
"""

from __future__ import annotations

from typing import Union

from repro.errors import ConfigurationError
from repro.fo.base import FrequencyOracle
from repro.fo.grr import GeneralizedRandomizedResponse
from repro.fo.he import (
    SummationHistogramEncoding,
    ThresholdHistogramEncoding,
)
from repro.fo.olh import OptimizedLocalHashing
from repro.fo.oue import OptimizedUnaryEncoding
from repro.fo.square_wave import SquareWave
from repro.fo.sue import SymmetricUnaryEncoding
from repro.fo.variance import grr_beats_olh

_PROTOCOLS = {
    "grr": GeneralizedRandomizedResponse,
    "olh": OptimizedLocalHashing,
    "oue": OptimizedUnaryEncoding,
    "sue": SymmetricUnaryEncoding,
    "she": SummationHistogramEncoding,
    "the": ThresholdHistogramEncoding,
    "sw": SquareWave,
}


def choose_protocol(epsilon: float, domain_size: int) -> str:
    """Eq. 13: the lower-variance protocol name for this (ε, L)."""
    return "grr" if grr_beats_olh(epsilon, domain_size) else "olh"


def make_oracle(protocol: str, epsilon: float,
                domain_size: int) -> FrequencyOracle:
    """Instantiate an oracle by name (``grr`` / ``olh`` / ``oue``).

    ``protocol="adaptive"`` applies :func:`choose_protocol` first.
    """
    if protocol == "adaptive":
        protocol = choose_protocol(epsilon, domain_size)
    try:
        cls = _PROTOCOLS[protocol]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {protocol!r}; expected one of "
            f"{sorted(_PROTOCOLS)} or 'adaptive'"
        ) from None
    return cls(epsilon, domain_size)
