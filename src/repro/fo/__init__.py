"""Frequency oracles: the LDP primitives FELIP builds on.

A frequency oracle (FO) is a pair of algorithms (paper, Section 2.2): a
client-side randomizer Ψ and a server-side estimator Φ. This package
implements GRR and OLH (the two protocols FELIP adaptively selects
between) plus the OUE/SUE/SHE/THE unary-and-histogram encodings, Square
Wave, Hadamard Response, and the AHEAD adaptive refinement as extensions;
the analytic variance formulas that drive grid sizing; the adaptive
chooser; and the protocol registry (:mod:`repro.fo.registry`) through
which every other layer — planning, collection, merging, streaming,
robustness ingestion — dispatches on a protocol by name or report type.
"""

from repro.fo.base import FrequencyOracle
from repro.fo.grr import GeneralizedRandomizedResponse
from repro.fo.olh import OptimizedLocalHashing
from repro.fo.oue import OptimizedUnaryEncoding
from repro.fo.square_wave import SquareWave, optimal_wave_width
from repro.fo.sue import SymmetricUnaryEncoding, sue_variance
from repro.fo.he import (
    SummationHistogramEncoding,
    ThresholdHistogramEncoding,
)
# The registry imports every built-in protocol module above; protocol
# modules that self-register (hr) and layers that consume the registry
# (adaptive) come after it.
from repro.fo.registry import (
    ProtocolSpec,
    all_specs,
    register,
    registered_names,
)
from repro.fo.adaptive import choose_protocol, make_oracle
from repro.fo.hr import HadamardResponse, hr_variance
from repro.fo.hashing import (
    DEFAULT_TILE_BYTES,
    chain_hash,
    mix_seeds,
    tiled_support_counts,
)
from repro.fo.variance import grr_variance, olh_variance, oue_variance

__all__ = [
    "DEFAULT_TILE_BYTES",
    "chain_hash",
    "mix_seeds",
    "tiled_support_counts",
    "FrequencyOracle",
    "GeneralizedRandomizedResponse",
    "OptimizedLocalHashing",
    "OptimizedUnaryEncoding",
    "SymmetricUnaryEncoding",
    "SummationHistogramEncoding",
    "ThresholdHistogramEncoding",
    "SquareWave",
    "HadamardResponse",
    "optimal_wave_width",
    "ProtocolSpec",
    "register",
    "registered_names",
    "all_specs",
    "choose_protocol",
    "make_oracle",
    "grr_variance",
    "olh_variance",
    "oue_variance",
    "sue_variance",
    "hr_variance",
]
