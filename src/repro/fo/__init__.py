"""Frequency oracles: the LDP primitives FELIP builds on.

A frequency oracle (FO) is a pair of algorithms (paper, Section 2.2): a
client-side randomizer Ψ and a server-side estimator Φ. This package
implements GRR and OLH (the two protocols FELIP adaptively selects between),
OUE as an extension, the analytic variance formulas that drive grid sizing,
and the adaptive chooser itself.
"""

from repro.fo.base import FrequencyOracle
from repro.fo.grr import GeneralizedRandomizedResponse
from repro.fo.olh import OptimizedLocalHashing
from repro.fo.oue import OptimizedUnaryEncoding
from repro.fo.square_wave import SquareWave, optimal_wave_width
from repro.fo.sue import SymmetricUnaryEncoding, sue_variance
from repro.fo.he import (
    SummationHistogramEncoding,
    ThresholdHistogramEncoding,
)
from repro.fo.adaptive import choose_protocol, make_oracle
from repro.fo.hashing import (
    DEFAULT_TILE_BYTES,
    chain_hash,
    mix_seeds,
    tiled_support_counts,
)
from repro.fo.variance import grr_variance, olh_variance, oue_variance

__all__ = [
    "DEFAULT_TILE_BYTES",
    "chain_hash",
    "mix_seeds",
    "tiled_support_counts",
    "FrequencyOracle",
    "GeneralizedRandomizedResponse",
    "OptimizedLocalHashing",
    "OptimizedUnaryEncoding",
    "SymmetricUnaryEncoding",
    "SummationHistogramEncoding",
    "ThresholdHistogramEncoding",
    "SquareWave",
    "optimal_wave_width",
    "choose_protocol",
    "make_oracle",
    "grr_variance",
    "olh_variance",
    "oue_variance",
    "sue_variance",
]
