"""The protocol registry: one :class:`ProtocolSpec` per frequency oracle.

Before this module existed, "what is a protocol" was spread over six
parallel dispatch tables — the oracle factory in ``fo/adaptive.py``, the
merger map in ``core/merge.py``, the sanitizer map in
``robustness/policy.py``, the known-name whitelist in ``core/config.py``,
the variance-class tuple in ``grids/sizing.py``, and hardcoded
``protocol == "ahead"`` branches in the planner/client/server/streaming
layers. Every new oracle had to touch all of them, and they drifted.

Now a protocol is one :class:`ProtocolSpec` value: its name, how to build
its oracle, which report type it emits and how two such reports merge,
how an untrusted report is sanitized, its analytic and planning variance
models, and capability flags that every layer queries instead of matching
names:

* ``mergeable`` — reports form a monoid under :func:`merger`; required by
  chunked sharding, streaming, and cross-batch accumulation.
* ``budget_splittable`` — the protocol works at ``epsilon / m`` under the
  sequential-composition strawman (``partition_mode="budget"``).
* ``streamable`` — batches may arrive over time (implies ``mergeable``).
* ``one_d_only`` — a 1-D refinement backend selected via
  ``FelipConfig.one_d_protocol`` (SW, AHEAD), not pinnable via
  ``FelipConfig.protocols``.
* ``adaptive_candidate`` — considered by the adaptive frequency-oracle
  choice (paper Section 5.3) and by default grid planning.

Registering a spec (see :mod:`repro.fo.hr` for a complete worked example)
is the *only* step needed to make a new protocol usable end-to-end:
batch, sharded, streaming, budget-split, robustness ingestion, and grid
sizing all dispatch through the accessors here.

This module also hosts the specs of the eight built-in protocols, which
is why the per-protocol mergers and sanitizers live here: they are spec
payload, not layer logic. ``tests/test_registry_lint.py`` enforces that
no other module under ``src/repro`` dispatches on protocol name literals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, IngestError, ProtocolError
from repro.fo import kernels as fo_kernels
from repro.fo.base import FrequencyOracle
from repro.fo.grr import GeneralizedRandomizedResponse, GRRReport
from repro.fo.he import (
    SHEReport,
    SummationHistogramEncoding,
    THEReport,
    ThresholdHistogramEncoding,
)
from repro.fo.olh import OLHReport, OptimizedLocalHashing
from repro.fo.oue import OptimizedUnaryEncoding, OUEReport
from repro.fo.square_wave import SquareWave, SWReport
from repro.fo.sue import SymmetricUnaryEncoding
from repro.fo.variance import grr_variance, olh_variance
from repro.robustness.ingest import (
    IngestPolicy,
    IngestStats,
    Reject,
    ReportSpec,
    check_feasible_total,
    check_int_rows,
    check_n,
    check_vector,
)


@dataclass(frozen=True)
class ProtocolSpec:
    """Everything the pipeline needs to know about one protocol.

    Attributes
    ----------
    name:
        Short identifier used in configs and plans (``"grr"``, ``"olh"``).
    factory:
        ``(epsilon, domain_size) -> FrequencyOracle``, or ``None`` for
        backends with no standalone client oracle (AHEAD, which consumes
        its whole group through :attr:`interactive_fit`).
    report_type:
        The report class :meth:`FrequencyOracle.perturb` returns. Several
        specs may share one (SUE perturbs into OUE's container); the first
        registered owner handles merging/sanitizing for the type.
    merger:
        ``(Sequence[report]) -> report`` combining disjoint user batches;
        must be associative and raise
        :class:`~repro.errors.ProtocolError` on parameter disagreement.
    sanitizer:
        ``(report, IngestPolicy, IngestStats, Optional[ReportSpec]) ->
        (report | None, users)`` validating one untrusted report; raises
        :class:`~repro.robustness.ingest.Reject` (whole-report) or
        row-filters per the policy. ``None`` means reports of this
        protocol pass through admission control unchecked (trusted
        in-process payloads only).
    analytic_variance:
        ``(epsilon, num_cells, n) -> float``: per-value estimation
        variance from ``n`` reports. Drives the adaptive choice and the
        budget-mode consistency weights.
    cell_variance:
        ``(SizingParams, num_cells) -> float``: the grid-planning
        per-cell variance model (includes the group factor ``m/n``).
    variance_grows_with_cells:
        True when per-cell variance grows with the cell count (GRR);
        selects the bisection solver branch in :mod:`repro.grids.sizing`
        instead of the size-independent closed forms.
    mergeable, budget_splittable, streamable, one_d_only,
    adaptive_candidate:
        Capability flags; see the module docstring.
    report_layout:
        ``(oracle, rows) -> {field: (shape, dtype)}`` declaring, ahead of
        perturbation, the exact shape and dtype of every *array* field of
        the report ``perturb`` will return for ``rows`` users. The
        process-backed executor uses this to preallocate shared-memory
        output slots so worker processes write report arrays in place
        instead of pickling them back; non-array fields travel as pickled
        scalars. ``None`` (the default) is always safe — reports of this
        protocol are then pickled whole across the process boundary.
    wire_code:
        Stable one-byte protocol tag for the binary wire codec
        (:mod:`repro.wire`). Codes are part of the wire format: once a
        code has shipped it must never be reassigned to a different
        protocol (retire codes, don't recycle them). ``None`` means
        reports of this protocol cannot travel over the wire (AHEAD's
        interactive models have no standalone report).
    interactive_fit:
        ``(planned, column, epsilon, rng) -> report`` for backends that
        consume a whole group interactively instead of a one-shot
        ``perturb`` (AHEAD's tree refinement).
    grid_estimator:
        ``(GroupReport) -> GridEstimate`` for backends whose report
        carries its own (data-adaptive) grid structure; ``None`` means
        the aggregator estimates with ``factory(...).estimate(report)``.
    kernels:
        Names of the :mod:`repro.fo.kernels` hot-path kernels this
        protocol dispatches to (perturb transforms, support sweeps,
        merge folds). Purely declarative — the oracle modules call the
        kernel layer directly — but it lets
        :func:`~repro.fo.adaptive.make_oracle`, worker-process
        initializers, and :func:`kernels_for` warm exactly the kernels a
        plan will hit before any timed work, so JIT-compile or
        shared-library-load cost never lands inside a measured stage.
        Names are validated against
        :data:`repro.fo.kernels.KERNEL_NAMES` at registration.
    """

    name: str
    factory: Optional[Callable[[float, int], FrequencyOracle]] = None
    report_type: Optional[type] = None
    merger: Optional[Callable[[Sequence], object]] = None
    sanitizer: Optional[Callable[..., tuple]] = None
    analytic_variance: Optional[Callable[[float, int, int], float]] = None
    cell_variance: Optional[Callable[[object, int], float]] = None
    variance_grows_with_cells: bool = False
    mergeable: bool = True
    budget_splittable: bool = True
    streamable: bool = True
    one_d_only: bool = False
    adaptive_candidate: bool = False
    report_layout: Optional[Callable[[FrequencyOracle, int], dict]] = None
    wire_code: Optional[int] = None
    interactive_fit: Optional[Callable] = None
    grid_estimator: Optional[Callable] = None
    kernels: Tuple[str, ...] = ()


_REGISTRY: Dict[str, ProtocolSpec] = {}
_BY_REPORT_TYPE: Dict[type, ProtocolSpec] = {}
_BY_WIRE_CODE: Dict[int, ProtocolSpec] = {}

#: the pseudo-protocol resolved to a concrete adaptive candidate at
#: planning time; accepted by name-based predicates, never registered
ADAPTIVE = "adaptive"


def register(spec: ProtocolSpec) -> ProtocolSpec:
    """Add a protocol to the registry; returns the spec for convenience.

    Validates internal consistency up front so a broken spec fails at
    import time, not deep inside a collection: mergeable specs need a
    report type and a merger, streamable implies mergeable, and a spec
    without a client-side oracle factory must provide the interactive
    fitting path instead.
    """
    if not spec.name or spec.name == ADAPTIVE:
        raise ConfigurationError(
            f"invalid protocol name {spec.name!r}: must be a non-empty "
            f"name other than {ADAPTIVE!r}")
    if spec.name in _REGISTRY:
        raise ConfigurationError(
            f"protocol {spec.name!r} is already registered; unregister it "
            f"first to replace the spec")
    if spec.mergeable and (spec.report_type is None or spec.merger is None):
        raise ConfigurationError(
            f"protocol {spec.name!r} is flagged mergeable but lacks a "
            f"report_type/merger pair")
    if spec.streamable and not spec.mergeable:
        raise ConfigurationError(
            f"protocol {spec.name!r} is flagged streamable but not "
            f"mergeable; streaming accumulates reports across batches")
    if spec.factory is None and spec.interactive_fit is None:
        raise ConfigurationError(
            f"protocol {spec.name!r} provides neither an oracle factory "
            f"nor an interactive_fit collection path")
    if spec.wire_code is not None:
        if not 1 <= spec.wire_code <= 255:
            raise ConfigurationError(
                f"protocol {spec.name!r} wire_code must fit one byte "
                f"(1..255), got {spec.wire_code}")
        if spec.wire_code in _BY_WIRE_CODE:
            raise ConfigurationError(
                f"wire_code {spec.wire_code} of protocol {spec.name!r} is "
                f"already taken by "
                f"{_BY_WIRE_CODE[spec.wire_code].name!r}; wire codes are "
                f"part of the frame format and must be unique forever")
        if spec.report_type is None:
            raise ConfigurationError(
                f"protocol {spec.name!r} declares wire_code "
                f"{spec.wire_code} but no report_type to decode into")
    unknown = [k for k in spec.kernels if k not in fo_kernels.KERNEL_NAMES]
    if unknown:
        raise ConfigurationError(
            f"protocol {spec.name!r} declares unknown kernels {unknown}; "
            f"known kernels: {list(fo_kernels.KERNEL_NAMES)}")
    _REGISTRY[spec.name] = spec
    if spec.report_type is not None and \
            spec.report_type not in _BY_REPORT_TYPE:
        # First owner wins: SUE shares OUE's report container, so OUE's
        # spec handles OUEReport merging and sanitizing.
        _BY_REPORT_TYPE[spec.report_type] = spec
    if spec.wire_code is not None:
        _BY_WIRE_CODE[spec.wire_code] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a protocol (test hook); unknown names are a no-op."""
    spec = _REGISTRY.pop(name, None)
    if spec is None:
        return
    _BY_REPORT_TYPE.clear()
    _BY_WIRE_CODE.clear()
    for other in _REGISTRY.values():
        if other.report_type is not None and \
                other.report_type not in _BY_REPORT_TYPE:
            _BY_REPORT_TYPE[other.report_type] = other
        if other.wire_code is not None:
            _BY_WIRE_CODE[other.wire_code] = other


def get(name: str) -> ProtocolSpec:
    """The spec registered under ``name``.

    This is the single source of the unknown-protocol error: every layer
    (oracle construction, config validation, grid sizing) raises the same
    :class:`~repro.errors.ConfigurationError` listing what is actually
    registered.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; registered protocols: "
            f"{list(_REGISTRY)} (or {ADAPTIVE!r}, resolved to a concrete "
            f"candidate at planning time)") from None


def registered_names() -> Tuple[str, ...]:
    """All registered protocol names, in registration order."""
    return tuple(_REGISTRY)


def all_specs() -> Tuple[ProtocolSpec, ...]:
    """All registered specs, in registration order."""
    return tuple(_REGISTRY.values())


def spec_for_report(report_type: type) -> Optional[ProtocolSpec]:
    """The spec owning a report class, or ``None`` for foreign types."""
    return _BY_REPORT_TYPE.get(report_type)


def spec_for_wire_code(code: int) -> Optional[ProtocolSpec]:
    """The spec registered under a wire protocol tag, or ``None``.

    The binary codec (:mod:`repro.wire`) resolves the frame header's
    one-byte protocol tag here, so a newly registered protocol with a
    ``wire_code`` becomes decodable with zero codec edits.
    """
    return _BY_WIRE_CODE.get(int(code))


def wire_codes() -> Dict[str, int]:
    """``{protocol name: wire code}`` for every wire-capable protocol."""
    return {s.name: s.wire_code for s in _REGISTRY.values()
            if s.wire_code is not None}


def adaptive_candidates() -> Tuple[ProtocolSpec, ...]:
    """Specs the adaptive frequency-oracle choice considers, in order.

    Registration order is the tie-break: the first candidate whose
    variance no later candidate strictly beats wins (GRR before OLH
    reproduces the paper's Eq. 13 ``<=`` comparison exactly).
    """
    return tuple(s for s in _REGISTRY.values() if s.adaptive_candidate)


def kernels_for(protocols: Iterable[str]) -> Tuple[str, ...]:
    """The union of hot-path kernel names a set of protocols dispatches
    to, for targeted :func:`repro.fo.kernels.warm` calls before timed
    work. The :data:`ADAPTIVE` pseudo-protocol expands to every adaptive
    candidate (the concrete choice is not known until planning runs).
    Order follows :data:`repro.fo.kernels.KERNEL_NAMES` for determinism.
    """
    wanted = set()
    for name in protocols:
        specs = adaptive_candidates() if name == ADAPTIVE else (get(name),)
        for spec in specs:
            wanted.update(spec.kernels)
    return tuple(k for k in fo_kernels.KERNEL_NAMES if k in wanted)


def pinnable_protocol_names() -> Tuple[str, ...]:
    """Names valid in ``FelipConfig.protocols`` (not 1-D-only backends)."""
    return tuple(n for n, s in _REGISTRY.items() if not s.one_d_only)


def one_d_protocol_names() -> Tuple[str, ...]:
    """Names valid in ``FelipConfig.one_d_protocol``."""
    return tuple(n for n, s in _REGISTRY.items() if s.one_d_only)


def mergeable_protocol_names() -> Tuple[str, ...]:
    """Names whose reports :func:`repro.core.merge.merge_reports` merges."""
    return tuple(n for n, s in _REGISTRY.items() if s.mergeable)


# ---------------------------------------------------------------------------
# Merge monoids of the built-in report types (moved from core/merge.py).
# Each validates cross-report parameter agreement, then concatenates
# per-user rows (GRR/OLH) or adds sufficient statistics (the rest).
# ---------------------------------------------------------------------------


def _merge_grr(reports: Sequence[GRRReport]) -> GRRReport:
    first = reports[0]
    if any(r.domain_size != first.domain_size for r in reports):
        raise ProtocolError("cannot merge GRR reports across domains")
    return GRRReport(
        values=np.concatenate([r.values for r in reports]),
        domain_size=first.domain_size)


def _merge_olh(reports: Sequence[OLHReport]) -> OLHReport:
    first = reports[0]
    if any(r.hash_range != first.hash_range
           or r.domain_size != first.domain_size for r in reports):
        raise ProtocolError("cannot merge OLH reports across configs")
    return OLHReport(
        seeds=np.concatenate([r.seeds for r in reports]),
        buckets=np.concatenate([r.buckets for r in reports]),
        hash_range=first.hash_range, domain_size=first.domain_size)


def _merge_oue(reports: Sequence[OUEReport]) -> OUEReport:
    first = reports[0]
    if any(len(r.ones) != len(first.ones) for r in reports):
        raise ProtocolError("cannot merge OUE reports across domains")
    return OUEReport(
        ones=fo_kernels.fold_arrays([r.ones for r in reports]),
        n=sum(r.n for r in reports))


def _merge_she(reports: Sequence[SHEReport]) -> SHEReport:
    first = reports[0]
    if any(len(r.sums) != len(first.sums) for r in reports):
        raise ProtocolError("cannot merge SHE reports across domains")
    return SHEReport(
        sums=fo_kernels.fold_arrays([r.sums for r in reports]),
        n=sum(r.n for r in reports))


def _merge_the(reports: Sequence[THEReport]) -> THEReport:
    first = reports[0]
    if any(len(r.supports) != len(first.supports)
           or abs(r.threshold - first.threshold) > 1e-12
           for r in reports):
        raise ProtocolError("cannot merge THE reports across configs")
    return THEReport(
        supports=fo_kernels.fold_arrays([r.supports for r in reports]),
        n=sum(r.n for r in reports),
        threshold=first.threshold)


def _merge_sw(reports: Sequence[SWReport]) -> SWReport:
    first = reports[0]
    if any(len(r.counts) != len(first.counts)
           or abs(r.wave_width - first.wave_width) > 1e-12
           for r in reports):
        raise ProtocolError("cannot merge SW reports across configs")
    return SWReport(
        counts=fo_kernels.fold_arrays([r.counts for r in reports]),
        n=sum(r.n for r in reports),
        wave_width=first.wave_width)


# ---------------------------------------------------------------------------
# Ingestion sanitizers of the built-in report types (moved from
# robustness/policy.py; the dispatch driver stays there). Per-user-row
# types are filtered row-wise in drop mode; aggregate sufficient
# statistics are all-or-nothing, with k-sigma feasibility tests where the
# protocol admits one.
# ---------------------------------------------------------------------------


def _sanitize_grr(report: GRRReport, policy: IngestPolicy,
                  stats: IngestStats, spec: Optional[ReportSpec]):
    values = check_int_rows(report.values, "values")
    domain = spec.domain_size if spec and spec.domain_size else \
        int(report.domain_size)
    if spec and spec.domain_size and report.domain_size != spec.domain_size:
        raise Reject("domain-mismatch",
                     f"declared {report.domain_size}, "
                     f"expected {spec.domain_size}")
    valid = (values >= 0) & (values < domain)
    bad = int(len(values) - valid.sum())
    if bad == 0:
        return GRRReport(values=values, domain_size=domain), len(values)
    if policy.mode == "strict":
        stats.record_reject("out-of-domain-values", bad, policy,
                            f"{bad}/{len(values)} rows")
        raise IngestError(
            f"GRR report carries {bad} out-of-domain values "
            f"(domain [0, {domain})); strict ingest policy rejects it")
    stats.record_reject("out-of-domain-values", bad, policy,
                        f"{bad}/{len(values)} rows", whole_report=False)
    kept = values[valid]
    if len(kept) == 0:
        return None, 0
    return GRRReport(values=kept, domain_size=domain), len(kept)


def _sanitize_olh(report: OLHReport, policy: IngestPolicy,
                  stats: IngestStats, spec: Optional[ReportSpec]):
    seeds = np.asarray(report.seeds)
    buckets = check_int_rows(report.buckets, "buckets")
    if seeds.ndim != 1 or len(seeds) != len(buckets):
        raise Reject("seed-bucket-mismatch",
                     f"{seeds.shape} seeds vs {len(buckets)} buckets")
    g = spec.hash_range if spec and spec.hash_range else \
        int(report.hash_range)
    if spec and spec.hash_range and report.hash_range != spec.hash_range:
        raise Reject("hash-range-mismatch",
                     f"declared {report.hash_range}, expected "
                     f"{spec.hash_range}")
    if spec and spec.domain_size and report.domain_size != spec.domain_size:
        raise Reject("domain-mismatch",
                     f"declared {report.domain_size}, "
                     f"expected {spec.domain_size}")
    valid = (buckets >= 0) & (buckets < g)
    bad = int(len(buckets) - valid.sum())
    if bad == 0:
        return OLHReport(seeds=seeds.astype(np.uint64, copy=False),
                         buckets=buckets, hash_range=g,
                         domain_size=report.domain_size), len(buckets)
    if policy.mode == "strict":
        stats.record_reject("out-of-range-buckets", bad, policy,
                            f"{bad}/{len(buckets)} rows")
        raise IngestError(
            f"OLH report carries {bad} buckets outside [0, {g}); strict "
            f"ingest policy rejects it")
    stats.record_reject("out-of-range-buckets", bad, policy,
                        f"{bad}/{len(buckets)} rows", whole_report=False)
    if not valid.any():
        return None, 0
    return OLHReport(seeds=seeds[valid].astype(np.uint64, copy=False),
                     buckets=buckets[valid], hash_range=g,
                     domain_size=report.domain_size), int(valid.sum())


def _sanitize_oue(report: OUEReport, policy: IngestPolicy,
                  stats: IngestStats, spec: Optional[ReportSpec]):
    n = check_n(report.n)
    d = spec.domain_size if spec and spec.domain_size else len(
        np.atleast_1d(np.asarray(report.ones)))
    ones = check_vector(report.ones, "ones", d)
    if (ones < 0).any() or (ones > n).any():
        raise Reject("counter-out-of-bounds",
                     f"per-value 1-counts must lie in [0, n={n}]")
    if spec and spec.p is not None and spec.q is not None and n > 0:
        # Honest total one-bits: Binomial(n, p) + Binomial(n(d-1), q).
        mean = n * (spec.p + spec.q * (d - 1))
        var = (n * spec.p * (1 - spec.p)
               + n * (d - 1) * spec.q * (1 - spec.q))
        check_feasible_total(float(ones.sum()), mean, var,
                             policy.feasibility_sigmas)
    return OUEReport(ones=ones.astype(np.int64), n=n), n


def _sanitize_she(report: SHEReport, policy: IngestPolicy,
                  stats: IngestStats, spec: Optional[ReportSpec]):
    n = check_n(report.n)
    d = spec.domain_size if spec and spec.domain_size else len(
        np.atleast_1d(np.asarray(report.sums)))
    sums = check_vector(report.sums, "sums", d)
    if spec and spec.scale is not None and n > 0:
        # Each honest user contributes exactly one one-hot unit plus
        # zero-mean Laplace(scale) noise on every coordinate, so the
        # grand total is n ± noise with variance n·d·2·scale².
        var = n * d * 2.0 * spec.scale ** 2
        check_feasible_total(float(sums.sum()), float(n), var,
                             policy.feasibility_sigmas)
    return SHEReport(sums=sums, n=n), n


def _sanitize_the(report: THEReport, policy: IngestPolicy,
                  stats: IngestStats, spec: Optional[ReportSpec]):
    n = check_n(report.n)
    d = spec.domain_size if spec and spec.domain_size else len(
        np.atleast_1d(np.asarray(report.supports)))
    supports = check_vector(report.supports, "supports", d)
    if (supports < 0).any() or (supports > n).any():
        raise Reject("counter-out-of-bounds",
                     f"support counts must lie in [0, n={n}]")
    if not np.isfinite(report.threshold):
        raise Reject("threshold-not-finite", f"θ={report.threshold}")
    if spec and spec.threshold is not None and \
            abs(report.threshold - spec.threshold) > 1e-9:
        raise Reject("threshold-mismatch",
                     f"declared θ={report.threshold}, expected "
                     f"{spec.threshold}")
    if spec and spec.p is not None and spec.q is not None and n > 0:
        mean = n * (spec.p + spec.q * (d - 1))
        var = (n * spec.p * (1 - spec.p)
               + n * (d - 1) * spec.q * (1 - spec.q))
        check_feasible_total(float(supports.sum()), mean, var,
                             policy.feasibility_sigmas)
    return THEReport(supports=supports.astype(np.int64), n=n,
                     threshold=float(report.threshold)), n


def _sanitize_sw(report: SWReport, policy: IngestPolicy,
                 stats: IngestStats, spec: Optional[ReportSpec]):
    n = check_n(report.n)
    buckets = spec.report_buckets if spec and spec.report_buckets else len(
        np.atleast_1d(np.asarray(report.counts)))
    counts = check_vector(report.counts, "counts", buckets)
    if (counts < 0).any():
        raise Reject("negative-counts", "SW bucket counts must be >= 0")
    if int(counts.sum()) != n:
        raise Reject("support-mismatch",
                     f"counts sum to {int(counts.sum())}, declared n={n}")
    if not np.isfinite(report.wave_width) or report.wave_width <= 0:
        raise Reject("wave-width-invalid", f"b={report.wave_width}")
    if spec and spec.wave_width is not None and \
            abs(report.wave_width - spec.wave_width) > 1e-9:
        raise Reject("wave-width-mismatch",
                     f"declared b={report.wave_width}, expected "
                     f"{spec.wave_width}")
    return SWReport(counts=counts.astype(np.int64), n=n,
                    wave_width=float(report.wave_width)), n


# ---------------------------------------------------------------------------
# Shared-memory report layouts of the built-in report types: the exact
# (shape, dtype) of every array field ``perturb`` emits for ``rows``
# users, declared up front so the process-backed executor can reserve
# output slots before the shard runs. Per-user-row protocols scale with
# the shard (GRR/OLH), aggregate protocols with the domain (the rest).
# ---------------------------------------------------------------------------


def _layout_grr(oracle, rows: int) -> dict:
    return {"values": ((rows,), np.dtype(np.int64))}


def _layout_olh(oracle, rows: int) -> dict:
    return {"seeds": ((rows,), np.dtype(np.uint64)),
            "buckets": ((rows,), np.dtype(np.uint64))}


def _layout_oue(oracle, rows: int) -> dict:
    return {"ones": ((oracle.domain_size,), np.dtype(np.int64))}


def _layout_she(oracle, rows: int) -> dict:
    return {"sums": ((oracle.domain_size,), np.dtype(np.float64))}


def _layout_the(oracle, rows: int) -> dict:
    return {"supports": ((oracle.domain_size,), np.dtype(np.int64))}


def _layout_sw(oracle, rows: int) -> dict:
    return {"counts": ((oracle.report_buckets,), np.dtype(np.int64))}


# ---------------------------------------------------------------------------
# Variance models. The unary/histogram/square-wave protocols have no
# closed form that grows with the cell count; OLH's size-independent
# variance is their planning proxy (exactly the pre-registry behavior).
# ---------------------------------------------------------------------------


def _grr_analytic(epsilon: float, num_cells: int, n: int) -> float:
    return grr_variance(epsilon, num_cells, n)


def _olh_class_analytic(epsilon: float, num_cells: int, n: int) -> float:
    return olh_variance(epsilon, n)


def _grr_cell_variance(params, num_cells: int) -> float:
    return params.cell_variance_grr(num_cells)


def _olh_class_cell_variance(params, num_cells: int) -> float:
    return params.cell_variance_olh


# ---------------------------------------------------------------------------
# AHEAD's interactive collection and estimation paths. Imports stay local:
# baselines and grids both import repro.fo, so a module-level import here
# would be a cycle.
# ---------------------------------------------------------------------------


def _fit_ahead(planned, column: np.ndarray, epsilon: float, rng):
    """Run the AHEAD adaptive decomposition on one group's column.

    The group's users are partitioned across AHEAD's tree-building rounds
    internally; each still submits exactly one ε-LDP report.
    """
    from repro.baselines.ahead import Ahead1D
    model = Ahead1D(planned.grid.attribute.domain_size, epsilon)
    return model.fit(column, rng)


def _estimate_ahead_group(group):
    """Turn a fitted AHEAD model into a (data-adaptively binned) grid.

    The planned placeholder grid is replaced by one whose binning is the
    model's final frontier — finer cells where the data is — and whose
    frequencies are the frontier estimates. Downstream stages
    (consistency, response matrices) already handle arbitrary contiguous
    binnings.
    """
    from repro.grids.binning import Binning
    from repro.grids.grid import Grid1D, GridEstimate
    model = group.report
    intervals = model.frontier
    edges = np.array([iv.lo for iv in intervals]
                     + [intervals[-1].hi + 1], dtype=np.int64)
    binning = Binning.from_edges(edges)
    grid = Grid1D(group.planned.grid.attr_index,
                  group.planned.grid.attribute, binning)
    freqs = np.array([iv.frequency for iv in intervals])
    return GridEstimate(grid=grid, frequencies=freqs)


# ---------------------------------------------------------------------------
# Built-in protocol specs. Registration order matters for tie-breaking:
# GRR before OLH reproduces the paper's Eq. 13 "GRR on ties" choice, and
# plan_grid keeps the earliest-registered candidate on equal predicted
# error.
# ---------------------------------------------------------------------------


register(ProtocolSpec(
    name="grr",
    wire_code=1,
    report_layout=_layout_grr,
    factory=GeneralizedRandomizedResponse,
    report_type=GRRReport,
    merger=_merge_grr,
    sanitizer=_sanitize_grr,
    analytic_variance=_grr_analytic,
    cell_variance=_grr_cell_variance,
    variance_grows_with_cells=True,
    adaptive_candidate=True,
    kernels=("grr_apply",),
))

register(ProtocolSpec(
    name="olh",
    wire_code=2,
    report_layout=_layout_olh,
    factory=OptimizedLocalHashing,
    report_type=OLHReport,
    merger=_merge_olh,
    sanitizer=_sanitize_olh,
    analytic_variance=_olh_class_analytic,
    cell_variance=_olh_class_cell_variance,
    adaptive_candidate=True,
    kernels=("grr_apply", "support_counts"),
))

register(ProtocolSpec(
    name="oue",
    wire_code=3,
    report_layout=_layout_oue,
    factory=OptimizedUnaryEncoding,
    report_type=OUEReport,
    merger=_merge_oue,
    sanitizer=_sanitize_oue,
    analytic_variance=_olh_class_analytic,
    cell_variance=_olh_class_cell_variance,
    kernels=("ue_accumulate", "fold_arrays"),
))

register(ProtocolSpec(
    name="sue",
    wire_code=4,
    report_layout=_layout_oue,
    factory=SymmetricUnaryEncoding,
    report_type=OUEReport,  # SUE perturbs into OUE's container
    merger=_merge_oue,
    sanitizer=_sanitize_oue,
    analytic_variance=_olh_class_analytic,
    cell_variance=_olh_class_cell_variance,
    kernels=("ue_accumulate", "fold_arrays"),
))

register(ProtocolSpec(
    name="she",
    wire_code=5,
    report_layout=_layout_she,
    factory=SummationHistogramEncoding,
    report_type=SHEReport,
    merger=_merge_she,
    sanitizer=_sanitize_she,
    analytic_variance=_olh_class_analytic,
    cell_variance=_olh_class_cell_variance,
    kernels=("he_sum_accumulate", "fold_arrays"),
))

register(ProtocolSpec(
    name="the",
    wire_code=6,
    report_layout=_layout_the,
    factory=ThresholdHistogramEncoding,
    report_type=THEReport,
    merger=_merge_the,
    sanitizer=_sanitize_the,
    analytic_variance=_olh_class_analytic,
    cell_variance=_olh_class_cell_variance,
    kernels=("he_threshold_accumulate", "fold_arrays"),
))

register(ProtocolSpec(
    name="sw",
    wire_code=7,
    report_layout=_layout_sw,
    factory=SquareWave,
    report_type=SWReport,
    merger=_merge_sw,
    sanitizer=_sanitize_sw,
    analytic_variance=_olh_class_analytic,
    cell_variance=_olh_class_cell_variance,
    one_d_only=True,
    kernels=("sw_transform", "fold_arrays"),
))

register(ProtocolSpec(
    name="ahead",
    factory=None,
    report_type=None,
    merger=None,
    sanitizer=None,
    analytic_variance=_olh_class_analytic,
    cell_variance=_olh_class_cell_variance,
    mergeable=False,
    budget_splittable=False,
    streamable=False,
    one_d_only=True,
    interactive_fit=_fit_ahead,
    grid_estimator=_estimate_ahead_group,
))
