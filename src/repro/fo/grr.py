"""Generalized Randomized Response (paper, Section 2.2.1).

Each user reports their true value with probability
``p = e^ε / (e^ε + d − 1)`` and otherwise a uniformly random *other* value.
The ratio ``p/q = e^ε`` for any pair of outputs, so GRR satisfies ε-LDP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.fo import kernels
from repro.fo.base import FrequencyOracle
from repro.fo.variance import grr_variance
from repro.errors import ProtocolError
from repro.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class GRRReport:
    """Batch of GRR reports: one perturbed value per user.

    Invariants enforced at construction (mirroring :class:`OLHReport`):
    every value in ``[0, domain_size)``. ``values`` is normalized to
    ``int64`` so estimation's ``bincount`` never re-casts.
    """

    values: np.ndarray
    domain_size: int

    def __post_init__(self) -> None:
        values = np.asarray(self.values)
        if values.ndim != 1:
            raise ProtocolError(
                f"values must be 1-D, got shape {values.shape}")
        if self.domain_size < 1:
            raise ProtocolError(
                f"domain size must be >= 1, got {self.domain_size}")
        if not np.issubdtype(values.dtype, np.integer):
            raise ProtocolError(
                f"values must be integers, got dtype {values.dtype}")
        if len(values) and (values.min() < 0
                            or values.max() >= self.domain_size):
            raise ProtocolError(
                f"values must lie in [0, {self.domain_size}), got range "
                f"[{values.min()}, {values.max()}]"
            )
        object.__setattr__(
            self, "values", values.astype(np.int64, copy=False))

    def __len__(self) -> int:
        return len(self.values)


class GeneralizedRandomizedResponse(FrequencyOracle):
    """GRR frequency oracle over ``{0..d-1}``."""

    name = "grr"

    def __init__(self, epsilon: float, domain_size: int):
        super().__init__(epsilon, domain_size)
        e = math.exp(self.epsilon)
        self.p = e / (e + self.domain_size - 1)
        self.q = 1.0 / (e + self.domain_size - 1)

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> GRRReport:
        """Ψ_GRR: keep with probability ``p``, else uniform other value."""
        values = self._check_values(values)
        rng = ensure_rng(rng)
        n = len(values)
        # Draw here, transform in the kernel: the keep uniforms and the
        # uniform draw over the d-1 "other" values (from [0, d-1), shifted
        # past the true value inside the kernel) keep the RNG consumption
        # order fixed across kernel backends.
        keep_uniforms = rng.random(n)
        others = rng.integers(0, self.domain_size - 1, size=n)
        return GRRReport(
            values=kernels.grr_apply(values, keep_uniforms, others, self.p),
            domain_size=self.domain_size)

    def estimate(self, report: GRRReport) -> np.ndarray:
        """Φ_GRR (paper Eq. 1): unbias the observed value counts."""
        if report.domain_size != self.domain_size:
            raise ProtocolError(
                f"report domain {report.domain_size} != oracle domain "
                f"{self.domain_size}"
            )
        n = len(report)
        if n == 0:
            raise ProtocolError("cannot estimate from zero reports")
        counts = np.bincount(report.values, minlength=self.domain_size)
        return (counts / n - self.q) / (self.p - self.q)

    def theoretical_variance(self, n: int) -> float:
        return grr_variance(self.epsilon, self.domain_size, n)
