"""Analytic variances of the frequency oracles (paper, Section 2.2).

These formulas drive both grid sizing (Section 5.2) and the adaptive
protocol choice (Section 5.3, Eq. 13). All return the variance of a single
value's frequency estimate from ``n`` reports; with population partitioning
into ``m`` groups, callers pass ``n / m`` (or multiply by ``m/n``).
"""

from __future__ import annotations

import math

from repro.errors import PrivacyError, ProtocolError


def _check(epsilon: float, n: int) -> None:
    if epsilon <= 0:
        raise PrivacyError(f"epsilon must be positive, got {epsilon}")
    if n < 1:
        raise ProtocolError(f"n must be >= 1, got {n}")


def grr_variance(epsilon: float, domain_size: int, n: int = 1) -> float:
    """GRR: ``(e^ε + d − 2) / (n (e^ε − 1)²)`` (paper Eq. 2).

    Linear in the domain size — GRR degrades on large domains.
    """
    _check(epsilon, n)
    if domain_size < 2:
        raise ProtocolError(f"domain_size must be >= 2, got {domain_size}")
    e = math.exp(epsilon)
    return (e + domain_size - 2) / (n * (e - 1) ** 2)


def olh_variance(epsilon: float, n: int = 1) -> float:
    """OLH: ``4 e^ε / (n (e^ε − 1)²)`` — independent of the domain size."""
    _check(epsilon, n)
    e = math.exp(epsilon)
    return 4.0 * e / (n * (e - 1) ** 2)


def oue_variance(epsilon: float, n: int = 1) -> float:
    """OUE: ``4 e^ε / (n (e^ε − 1)²)`` — same leading term as OLH."""
    return olh_variance(epsilon, n)


def grr_beats_olh(epsilon: float, domain_size: int) -> bool:
    """True when GRR's variance is at most OLH's for this (ε, d).

    Equivalent to ``d − 2 ≤ 3 e^ε``: GRR wins on small domains / large
    budgets, OLH on large domains — the heart of the adaptive FO (Eq. 13).
    """
    if domain_size < 2:
        raise ProtocolError(f"domain_size must be >= 2, got {domain_size}")
    return grr_variance(epsilon, domain_size) <= olh_variance(epsilon)
