"""Frequency-oracle interface.

Every oracle exposes the client/server split of the paper's (Ψ, Φ) pair:

* :meth:`FrequencyOracle.perturb` — Ψ, run once per user on their private
  value. Simulated in a vectorized batch, but each row uses independent
  randomness, so the output is distributionally identical to n independent
  clients.
* :meth:`FrequencyOracle.estimate` — Φ, run by the aggregator over all
  reports; returns the unbiased frequency estimate of every domain value.

Estimates are raw (possibly negative, not summing to one); post-processing
is a separate stage (:mod:`repro.postprocess`), as in the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from repro.errors import PrivacyError, ProtocolError
from repro.rng import RngLike, ensure_rng


def validate_epsilon(epsilon: float) -> float:
    """Validate a privacy budget; returns it as ``float``."""
    epsilon = float(epsilon)
    if not np.isfinite(epsilon) or epsilon <= 0.0:
        raise PrivacyError(f"epsilon must be positive and finite, "
                           f"got {epsilon}")
    return epsilon


class FrequencyOracle(ABC):
    """Abstract ε-LDP frequency oracle over the domain ``{0..d-1}``."""

    #: short protocol identifier ("grr", "olh", "oue")
    name: str = ""

    def __init__(self, epsilon: float, domain_size: int):
        self.epsilon = validate_epsilon(epsilon)
        if domain_size < 2:
            raise ProtocolError(
                f"domain_size must be >= 2, got {domain_size}"
            )
        self.domain_size = int(domain_size)

    def _check_values(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ProtocolError(
                f"values must be a 1-D array, got shape {values.shape}"
            )
        if values.size and (values.min() < 0
                            or values.max() >= self.domain_size):
            raise ProtocolError(
                f"values outside domain [0, {self.domain_size})"
            )
        return values.astype(np.int64, copy=False)

    @abstractmethod
    def perturb(self, values: np.ndarray, rng: RngLike = None) -> Any:
        """Ψ: perturb one private value per user; returns a report batch."""

    @abstractmethod
    def estimate(self, report: Any) -> np.ndarray:
        """Φ: unbiased frequency estimates (length ``domain_size``)."""

    @abstractmethod
    def theoretical_variance(self, n: int) -> float:
        """Analytic per-value estimation variance with ``n`` reports."""

    def run(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Convenience: perturb then estimate in one call."""
        rng = ensure_rng(rng)
        return self.estimate(self.perturb(values, rng))

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(epsilon={self.epsilon}, "
                f"domain_size={self.domain_size})")
