"""Symmetric Unary Encoding (SUE) — basic RAPPOR (Erlingsson et al. 2014).

Extension protocol: like OUE, the value is one-hot encoded and each bit is
flipped independently, but with the *symmetric* probabilities
``p = e^{ε/2} / (e^{ε/2} + 1)`` (keep) and ``q = 1 − p`` (flip), which split
the budget evenly between the 1-bit and the 0-bits. OUE dominates SUE in
variance (that is exactly why Wang et al. derived it); SUE is included for
completeness of the unary-encoding family and as a reference point in
protocol-comparison tests.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import PrivacyError, ProtocolError
from repro.fo import kernels
from repro.fo.base import FrequencyOracle
from repro.fo.oue import OUEReport
from repro.rng import RngLike, ensure_rng


def sue_variance(epsilon: float, n: int = 1) -> float:
    """SUE: ``q(1−q) / (n (p−q)²)`` with the symmetric p/q.

    Always at least OUE's variance; equality never holds for ε > 0.
    """
    if epsilon <= 0:
        raise PrivacyError(f"epsilon must be positive, got {epsilon}")
    if n < 1:
        raise ProtocolError(f"n must be >= 1, got {n}")
    half = math.exp(epsilon / 2.0)
    p = half / (half + 1.0)
    q = 1.0 - p
    return q * (1.0 - q) / (n * (p - q) ** 2)


class SymmetricUnaryEncoding(FrequencyOracle):
    """SUE / basic-RAPPOR frequency oracle over ``{0..d-1}``."""

    name = "sue"

    #: rows perturbed per vectorized block (bounds peak memory)
    _BLOCK = 65536

    def __init__(self, epsilon: float, domain_size: int):
        super().__init__(epsilon, domain_size)
        half = math.exp(self.epsilon / 2.0)
        self.p = half / (half + 1.0)
        self.q = 1.0 - self.p

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> OUEReport:
        """Ψ_SUE: one-hot encode; keep each bit w.p. ``p``, flip w.p. ``q``."""
        values = self._check_values(values)
        rng = ensure_rng(rng)
        d = self.domain_size
        ones = np.zeros(d, dtype=np.int64)
        for start in range(0, len(values), self._BLOCK):
            block = values[start:start + self._BLOCK]
            # Draws stay here (in the original consumption order); the
            # threshold-and-count transform runs in the kernel layer.
            uniforms = rng.random((len(block), d))
            true_uniforms = rng.random(len(block))
            ones += kernels.ue_accumulate(uniforms, block, true_uniforms,
                                          self.p, self.q)
        return OUEReport(ones=ones, n=len(values))

    def estimate(self, report: OUEReport) -> np.ndarray:
        """Φ_SUE: unbias the per-value 1-bit counts."""
        if len(report.ones) != self.domain_size:
            raise ProtocolError(
                f"report has {len(report.ones)} counters, oracle domain is "
                f"{self.domain_size}")
        if report.n == 0:
            raise ProtocolError("cannot estimate from zero reports")
        return (report.ones / report.n - self.q) / (self.p - self.q)

    def theoretical_variance(self, n: int) -> float:
        return sue_variance(self.epsilon, n)
