"""FELIP: locally differentially private frequency estimation on
multidimensional datasets — a full reproduction of Costa Filho & Machado,
EDBT 2023.

Public surface:

* :class:`repro.Felip` — the paper's strategies (OUG / OHG and their
  OLH-pinned variants) behind a fit/answer interface;
* :mod:`repro.data` — synthetic datasets (Uniform/Normal) plus IPUMS-like
  and Loan-like generators standing in for the paper's real datasets;
* :mod:`repro.queries` — predicates, conjunctive queries, random workloads;
* :mod:`repro.fo` — GRR / OLH / OUE frequency oracles and the adaptive
  chooser;
* :mod:`repro.baselines` — HIO and TDG/HDG comparators;
* :mod:`repro.optimizer` — :class:`~repro.optimizer.WorkloadSpec` and the
  cost-based plan→execute query optimizer;
* :mod:`repro.experiments` — the figure-by-figure evaluation harness.
"""

from repro import data, queries
from repro.core.config import FelipConfig
from repro.core.felip import Felip
from repro.errors import ReproError
from repro.optimizer import AnswerPlan, WorkloadSpec
from repro.schema import (
    CategoricalAttribute,
    NumericalAttribute,
    Schema,
)

__version__ = "1.0.0"

__all__ = [
    "Felip",
    "FelipConfig",
    "Schema",
    "NumericalAttribute",
    "CategoricalAttribute",
    "WorkloadSpec",
    "AnswerPlan",
    "ReproError",
    "data",
    "queries",
    "__version__",
]
