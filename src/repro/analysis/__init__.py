"""Error analysis: the paper's Section 5.7 decomposition, made queryable."""

from repro.analysis.error_budget import (
    ErrorBreakdown,
    collection_report,
    grid_error_breakdown,
    predict_query_error,
)

__all__ = [
    "ErrorBreakdown",
    "grid_error_breakdown",
    "predict_query_error",
    "collection_report",
]
