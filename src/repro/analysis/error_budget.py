"""Predicted error budgets (paper, Sections 5.2 and 5.7).

The paper decomposes a grid answer's squared error into *noise + sampling*
(one LDP-noise variance per cell inside the query region) and
*non-uniformity* (mass misattributed by the within-cell uniformity
assumption on partially covered border cells). This module exposes that
decomposition for a planned collection, so an aggregator can inspect, per
grid or per query, where its error budget goes — the same quantities the
planner minimizes, evaluated at the *actual* query selectivities instead
of the planning prior.

The λ > 2 estimation error (Algorithm 4's pairwise-composition error) is
dataset-dependent (paper §5.7) and is *not* modeled; predictions for
λ > 2 queries sum the pairwise budgets and should be read as a
lower-bound-flavored indicator, not a bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import FelipConfig
from repro.core.planner import PlannedGrid, plan_grids
from repro.errors import QueryError
from repro.grids.grid import Grid1D, Grid2D
from repro.grids.sizing import SizingParams
from repro.metrics import ResultTable
from repro.queries.query import Query
from repro.schema import Schema


@dataclass(frozen=True)
class ErrorBreakdown:
    """Predicted squared error of one grid answer, decomposed."""

    noise_sampling: float
    non_uniformity: float

    @property
    def total(self) -> float:
        return self.noise_sampling + self.non_uniformity

    def __add__(self, other: "ErrorBreakdown") -> "ErrorBreakdown":
        return ErrorBreakdown(
            noise_sampling=self.noise_sampling + other.noise_sampling,
            non_uniformity=self.non_uniformity + other.non_uniformity)


def _axis_is_numeric(grid, axis: str) -> bool:
    attr = grid.attribute_x if axis == "x" else grid.attribute_y
    return attr.is_numerical


def grid_error_breakdown(planned: PlannedGrid, params: SizingParams,
                         r_x: float, r_y: float = 0.5) -> ErrorBreakdown:
    """Predicted error of one grid at the given query selectivities.

    Mirrors the paper's per-grid objectives (Eqs. 3/4 and 9–12); the parts
    here must sum to the totals the sizing module minimizes — tests pin
    that equality.
    """
    grid = planned.grid
    var0 = params.cell_variance(planned.protocol, planned.num_cells)
    if isinstance(grid, Grid1D):
        l = grid.num_cells
        noise = l * r_x * var0
        if grid.attribute.is_numerical and not grid.binning.is_trivial:
            nonuni = (params.alpha1 / l) ** 2
        else:
            nonuni = 0.0
        return ErrorBreakdown(noise_sampling=noise, non_uniformity=nonuni)

    lx, ly = grid.shape
    noise = lx * r_x * ly * r_y * var0
    num_x = _axis_is_numeric(grid, "x") and not grid.binning_x.is_trivial
    num_y = _axis_is_numeric(grid, "y") and not grid.binning_y.is_trivial
    if num_x and num_y:
        nonuni = (2.0 * params.alpha2 * (lx * r_x + ly * r_y)
                  / (lx * ly)) ** 2
    elif num_x:
        nonuni = (2.0 * params.alpha2 * r_y / lx) ** 2
    elif num_y:
        nonuni = (2.0 * params.alpha2 * r_x / ly) ** 2
    else:
        nonuni = 0.0
    return ErrorBreakdown(noise_sampling=noise, non_uniformity=nonuni)


def _sizing_params(schema: Schema, config: FelipConfig, n: int,
                   plans: Sequence[PlannedGrid]) -> SizingParams:
    return SizingParams(epsilon=config.epsilon, n=n, m=len(plans),
                        alpha1=config.alpha1, alpha2=config.alpha2)


def predict_query_error(schema: Schema, config: FelipConfig, n: int,
                        query: Query,
                        plans: Optional[Sequence[PlannedGrid]] = None) \
        -> ErrorBreakdown:
    """Predicted squared error of answering ``query`` with this collection.

    λ = 1 uses the attribute's 1-D grid (or its cheapest pair under OUG);
    λ = 2 uses the pair's grid; λ > 2 sums the pairwise budgets (the
    Algorithm 4 composition error is dataset-dependent and unmodeled).
    """
    query.validate_for(schema)
    if plans is None:
        plans = plan_grids(schema, config, n)
    params = _sizing_params(schema, config, n, plans)
    by_key = {p.key: p for p in plans}

    selectivity = {
        schema.index_of(pred.attribute):
        pred.selectivity(schema[pred.attribute].domain_size)
        for pred in query
    }
    indices = sorted(selectivity)

    if len(indices) == 1:
        t = indices[0]
        if (t,) in by_key:
            return grid_error_breakdown(by_key[(t,)], params,
                                        selectivity[t])
        pair_key = min((key for key in by_key if t in key and
                        len(key) == 2),
                       key=lambda key: by_key[key].num_cells)
        r_x, r_y = ((selectivity[t], 1.0) if pair_key[0] == t
                    else (1.0, selectivity[t]))
        return grid_error_breakdown(by_key[pair_key], params, r_x, r_y)

    total = ErrorBreakdown(0.0, 0.0)
    for a in range(len(indices)):
        for b in range(a + 1, len(indices)):
            i, j = indices[a], indices[b]
            planned = by_key.get((i, j))
            if planned is None:
                raise QueryError(f"no grid planned for pair ({i}, {j})")
            total = total + grid_error_breakdown(
                planned, params, selectivity[i], selectivity[j])
    return total


def collection_report(schema: Schema, config: FelipConfig, n: int,
                      selectivity: Optional[float] = None) -> ResultTable:
    """Per-grid plan summary: size, protocol, predicted error split.

    ``selectivity`` defaults to the config's planning prior, so by default
    the table shows exactly the budgets the planner balanced.
    """
    plans = plan_grids(schema, config, n)
    params = _sizing_params(schema, config, n, plans)
    r = (config.expected_selectivity if selectivity is None
         else selectivity)
    table = ResultTable(
        ["grid", "cells", "protocol", "noise_sampling", "non_uniformity",
         "total"],
        title=f"Collection plan (n={n}, epsilon={config.epsilon}, "
              f"m={len(plans)})")
    for planned in plans:
        names = "x".join(schema[t].name for t in planned.key)
        breakdown = grid_error_breakdown(planned, params, r, r)
        table.add_row(names, planned.num_cells, planned.protocol,
                      breakdown.noise_sampling, breakdown.non_uniformity,
                      breakdown.total)
    return table
