"""Turning raw columns into integer-coded datasets.

The estimation pipeline works on integer codes; this module provides the
discretizers a user needs to bring real data (e.g. an actual IPUMS or
Lending Club extract) into that form:

* :func:`discretize_numeric` — equal-width or equal-depth (quantile)
  binning of real-valued columns;
* :func:`encode_categorical` — label indexing of categorical columns;
* :func:`build_dataset` — assemble a :class:`~repro.data.Dataset` from a
  mapping of raw columns.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import DataError
from repro.schema import Schema
from repro.schema.attribute import (
    CategoricalAttribute,
    NumericalAttribute,
)


def discretize_numeric(name: str, values: Sequence[float],
                       domain_size: int,
                       strategy: str = "equal_width",
                       lo: Optional[float] = None,
                       hi: Optional[float] = None) \
        -> Tuple[np.ndarray, NumericalAttribute]:
    """Bin real values into ``domain_size`` integer codes.

    Parameters
    ----------
    name:
        Attribute name.
    values:
        Raw numeric column (NaNs are rejected — impute first).
    domain_size:
        Number of codes ``d``.
    strategy:
        ``"equal_width"`` — uniform bins over ``[lo, hi]``;
        ``"equal_depth"`` — quantile bins (roughly equal mass per code),
        which spreads skewed columns so grid cells carry comparable mass.
    lo, hi:
        Clipping range for equal-width binning (defaults to the observed
        min/max). Ignored for equal-depth.

    Returns
    -------
    ``(codes, attribute)`` where the attribute records the value range so
    :meth:`NumericalAttribute.code_to_value` decodes into original units.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise DataError(f"{name}: values must be 1-D")
    if np.isnan(arr).any():
        raise DataError(f"{name}: NaNs present; impute before discretizing")
    if domain_size < 1:
        raise DataError(f"{name}: domain_size must be >= 1")

    if strategy == "equal_width":
        lo = float(arr.min()) if lo is None else float(lo)
        hi = float(arr.max()) if hi is None else float(hi)
        if hi <= lo:
            hi = lo + 1.0
        clipped = np.clip(arr, lo, hi)
        codes = np.floor((clipped - lo) / (hi - lo)
                         * domain_size).astype(np.int64)
        codes = np.minimum(codes, domain_size - 1)
        attr = NumericalAttribute(name=name, domain_size=domain_size,
                                  lo=lo, hi=hi)
        return codes, attr

    if strategy == "equal_depth":
        quantiles = np.quantile(arr, np.linspace(0, 1, domain_size + 1))
        # Deduplicate flat quantile stretches; searchsorted handles the
        # resulting irregular edges.
        edges = np.unique(quantiles[1:-1])
        codes = np.searchsorted(edges, arr, side="right").astype(np.int64)
        actual_domain = len(edges) + 1
        attr = NumericalAttribute(name=name, domain_size=actual_domain,
                                  lo=float(arr.min()),
                                  hi=float(arr.max()) + 1e-9)
        return codes, attr

    raise DataError(
        f"{name}: unknown strategy {strategy!r}; expected "
        f"'equal_width' or 'equal_depth'")


def encode_categorical(name: str, values: Sequence) \
        -> Tuple[np.ndarray, CategoricalAttribute]:
    """Index a categorical column; labels are sorted for determinism."""
    raw = [str(v) for v in values]
    labels = tuple(sorted(set(raw)))
    if not labels:
        raise DataError(f"{name}: empty column")
    index = {label: code for code, label in enumerate(labels)}
    codes = np.fromiter((index[v] for v in raw), dtype=np.int64,
                        count=len(raw))
    attr = CategoricalAttribute(name=name, domain_size=len(labels),
                                labels=labels)
    return codes, attr


#: column spec: ("numeric", values, domain) or ("categorical", values)
ColumnSpec = Union[Tuple[str, Sequence, int], Tuple[str, Sequence]]


def build_dataset(columns: Dict[str, ColumnSpec],
                  numeric_strategy: str = "equal_width") -> Dataset:
    """Assemble a dataset from raw columns.

    ``columns`` maps attribute name to ``("numeric", values, domain_size)``
    or ``("categorical", values)``; attribute order follows the mapping
    order.

    Example
    -------
    >>> ds = build_dataset({
    ...     "age": ("numeric", [23.0, 55.0, 48.0], 10),
    ...     "sex": ("categorical", ["m", "f", "f"]),
    ... })
    >>> ds.schema.names
    ['age', 'sex']
    """
    if not columns:
        raise DataError("no columns given")
    codes_list: List[np.ndarray] = []
    attrs = []
    length = None
    for name, spec in columns.items():
        kind = spec[0]
        if kind == "numeric":
            if len(spec) != 3:
                raise DataError(
                    f"{name}: numeric spec needs (kind, values, domain)")
            codes, attr = discretize_numeric(name, spec[1], spec[2],
                                             strategy=numeric_strategy)
        elif kind == "categorical":
            codes, attr = encode_categorical(name, spec[1])
        else:
            raise DataError(f"{name}: unknown column kind {kind!r}")
        if length is None:
            length = len(codes)
        elif len(codes) != length:
            raise DataError(
                f"{name}: column length {len(codes)} != {length}")
        codes_list.append(codes)
        attrs.append(attr)
    return Dataset(Schema(attrs), np.column_stack(codes_list))
