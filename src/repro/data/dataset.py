"""In-memory dataset: an ``(n, k)`` integer-coded matrix plus its schema."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import DataError
from repro.rng import RngLike, ensure_rng
from repro.schema import Schema


class Dataset:
    """Integer-coded multidimensional dataset.

    ``records[u, t]`` is the code (in ``[0, schema[t].domain_size)``) of user
    ``u``'s value for attribute ``t``. The container validates codes once at
    construction so downstream code can trust the invariant.
    """

    def __init__(self, schema: Schema, records: np.ndarray,
                 validate: bool = True):
        records = np.asarray(records)
        if records.ndim != 2:
            raise DataError(f"records must be 2-D, got shape {records.shape}")
        if records.shape[1] != len(schema):
            raise DataError(
                f"records have {records.shape[1]} columns but schema has "
                f"{len(schema)} attributes"
            )
        if not np.issubdtype(records.dtype, np.integer):
            if np.issubdtype(records.dtype, np.floating):
                rounded = np.rint(records)
                if not np.allclose(records, rounded):
                    raise DataError("float records are not integer-valued")
                records = rounded.astype(np.int64)
            else:
                raise DataError(f"unsupported record dtype {records.dtype}")
        records = records.astype(np.int64, copy=False)
        if validate:
            self._validate_codes(schema, records)
        self.schema = schema
        self.records = records

    @staticmethod
    def _validate_codes(schema: Schema, records: np.ndarray) -> None:
        if records.size == 0:
            return
        mins = records.min(axis=0)
        maxs = records.max(axis=0)
        for t, attr in enumerate(schema):
            if mins[t] < 0 or maxs[t] >= attr.domain_size:
                raise DataError(
                    f"attribute {attr.name!r}: codes span "
                    f"[{mins[t]}, {maxs[t]}] outside [0, {attr.domain_size})"
                )

    # -- basic properties ----------------------------------------------------

    @property
    def n(self) -> int:
        """Number of users (rows)."""
        return self.records.shape[0]

    @property
    def k(self) -> int:
        """Number of attributes (columns)."""
        return self.records.shape[1]

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"Dataset(n={self.n}, schema={self.schema!r})"

    # -- views and derivations ------------------------------------------------

    def column(self, attr) -> np.ndarray:
        """Codes of one attribute, by name or index (a view, not a copy)."""
        if isinstance(attr, str):
            attr = self.schema.index_of(attr)
        return self.records[:, attr]

    def sample(self, n: int, rng: RngLike = None,
               replace: bool = False) -> "Dataset":
        """Random subsample of ``n`` users."""
        if not replace and n > self.n:
            raise DataError(
                f"cannot sample {n} users without replacement from {self.n}"
            )
        idx = ensure_rng(rng).choice(self.n, size=n, replace=replace)
        return Dataset(self.schema, self.records[idx], validate=False)

    def project(self, names: Sequence[str]) -> "Dataset":
        """Dataset restricted to the named attributes."""
        cols = [self.schema.index_of(nm) for nm in names]
        return Dataset(self.schema.subset(names), self.records[:, cols],
                       validate=False)

    def marginal(self, attr) -> np.ndarray:
        """Exact (non-private) frequency vector of one attribute."""
        if isinstance(attr, str):
            attr = self.schema.index_of(attr)
        d = self.schema[attr].domain_size
        counts = np.bincount(self.records[:, attr], minlength=d)
        return counts / max(self.n, 1)

    def joint_marginal(self, attr_i, attr_j) -> np.ndarray:
        """Exact (non-private) 2-D frequency matrix of two attributes."""
        if isinstance(attr_i, str):
            attr_i = self.schema.index_of(attr_i)
        if isinstance(attr_j, str):
            attr_j = self.schema.index_of(attr_j)
        di = self.schema[attr_i].domain_size
        dj = self.schema[attr_j].domain_size
        flat = self.records[:, attr_i] * dj + self.records[:, attr_j]
        counts = np.bincount(flat, minlength=di * dj)
        return counts.reshape(di, dj) / max(self.n, 1)
