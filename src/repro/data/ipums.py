"""IPUMS-like synthetic census generator.

The paper samples 10 million IPUMS USA records with ten attributes (5
categorical, 5 numerical, "different distributions"). IPUMS extracts are
gated behind a registration wall, so this module synthesizes a census-shaped
population with the same schema and the distributional features that drive
the paper's figures:

* ``age`` — piecewise-linear density (bulge at working ages, thin tail);
* ``income`` — log-normal, binned onto the integer domain (heavy right skew);
* ``hours_worked`` — spike at full-time with noise around it;
* ``years_edu`` — multimodal (HS / college / grad peaks);
* ``commute_min`` — gamma-shaped;
* ``sex`` — near-balanced binary;
* ``race`` / ``marital`` / ``state_region`` / ``education_level`` —
  unbalanced categoricals, with ``education_level`` correlated to ``income``
  so pairwise (cat x num) structure exists.

The substitution preserves what the experiments exercise — attribute mix,
domain sizes, marginal skew and cross-attribute correlation — per DESIGN.md §5.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.rng import RngLike, ensure_rng
from repro.schema import Schema
from repro.schema.attribute import categorical, numerical

_RACE_PROBS = np.array([0.60, 0.13, 0.06, 0.12, 0.05, 0.04])
_MARITAL_PROBS = np.array([0.48, 0.33, 0.11, 0.06, 0.02])
_REGION_PROBS = np.array([0.17, 0.21, 0.38, 0.24])
_EDU_LEVELS = ("no-hs", "hs", "some-college", "bachelors", "masters",
               "doctorate")


def ipums_schema(numerical_domain: int = 100) -> Schema:
    """Schema of the synthetic census: 5 numerical + 5 categorical."""
    return Schema([
        numerical("age", numerical_domain, lo=0.0, hi=100.0),
        numerical("income", numerical_domain, lo=0.0, hi=500_000.0),
        numerical("hours_worked", numerical_domain, lo=0.0, hi=100.0),
        numerical("years_edu", numerical_domain, lo=0.0, hi=25.0),
        numerical("commute_min", numerical_domain, lo=0.0, hi=180.0),
        categorical("sex", ("male", "female")),
        categorical("race", len(_RACE_PROBS)),
        categorical("marital", len(_MARITAL_PROBS)),
        categorical("state_region", ("northeast", "midwest", "south",
                                     "west")),
        categorical("education_level", _EDU_LEVELS),
    ])


def _scale_to_domain(values: np.ndarray, domain: int) -> np.ndarray:
    """Rank-preserving rescale of arbitrary positive draws onto ``[0, d)``."""
    lo, hi = values.min(), values.max()
    if hi <= lo:
        return np.zeros(len(values), dtype=np.int64)
    scaled = (values - lo) / (hi - lo) * (domain - 1)
    return np.clip(np.rint(scaled), 0, domain - 1).astype(np.int64)


def _age_codes(n: int, domain: int, rng: np.random.Generator) -> np.ndarray:
    # Mixture: children, a broad working-age bulge, a thinning elderly tail.
    component = rng.choice(3, size=n, p=[0.22, 0.58, 0.20])
    draws = np.empty(n)
    kids = component == 0
    work = component == 1
    old = component == 2
    draws[kids] = rng.uniform(0.0, 0.18, size=kids.sum())
    draws[work] = rng.beta(2.2, 2.8, size=work.sum()) * 0.50 + 0.18
    draws[old] = 0.68 + rng.exponential(0.09, size=old.sum())
    return np.clip(np.rint(draws * (domain - 1)), 0, domain - 1).astype(
        np.int64)


def _income_codes(n: int, domain: int, edu: np.ndarray,
                  rng: np.random.Generator) -> np.ndarray:
    # Log-normal with a location shift per education level: ties the
    # education_level x income marginal together, which the response-matrix
    # and consistency machinery must capture.
    mu = 10.2 + 0.25 * edu
    draws = rng.lognormal(mean=mu, sigma=0.7)
    return _scale_to_domain(np.log1p(draws), domain)


def _hours_codes(n: int, domain: int, rng: np.random.Generator) -> np.ndarray:
    component = rng.choice(3, size=n, p=[0.18, 0.64, 0.18])
    draws = np.empty(n)
    draws[component == 0] = rng.uniform(0.0, 0.3, size=(component == 0).sum())
    draws[component == 1] = rng.normal(0.42, 0.04,
                                       size=(component == 1).sum())
    draws[component == 2] = rng.normal(0.60, 0.10,
                                       size=(component == 2).sum())
    return np.clip(np.rint(draws * (domain - 1)), 0, domain - 1).astype(
        np.int64)


def _years_edu_codes(n: int, domain: int, edu: np.ndarray,
                     rng: np.random.Generator) -> np.ndarray:
    centers = np.array([0.30, 0.48, 0.56, 0.66, 0.76, 0.88])
    draws = rng.normal(centers[edu], 0.05)
    return np.clip(np.rint(draws * (domain - 1)), 0, domain - 1).astype(
        np.int64)


def _commute_codes(n: int, domain: int,
                   rng: np.random.Generator) -> np.ndarray:
    draws = rng.gamma(shape=2.0, scale=0.12, size=n)
    return np.clip(np.rint(draws * (domain - 1)), 0, domain - 1).astype(
        np.int64)


def ipums_like_dataset(n: int, numerical_domain: int = 100,
                       rng: RngLike = None) -> Dataset:
    """Generate a census-shaped dataset with the IPUMS schema.

    Parameters
    ----------
    n:
        Number of synthetic respondents.
    numerical_domain:
        Integer domain size shared by the five numerical attributes (the
        paper's domain-sweep experiments regenerate at 25..1600).
    rng:
        Seed or generator for reproducibility.
    """
    rng = ensure_rng(rng)
    schema = ipums_schema(numerical_domain)

    edu_weights = np.array([0.10, 0.28, 0.27, 0.22, 0.10, 0.03])
    edu = rng.choice(len(_EDU_LEVELS), size=n, p=edu_weights)

    cols = [
        _age_codes(n, numerical_domain, rng),
        _income_codes(n, numerical_domain, edu, rng),
        _hours_codes(n, numerical_domain, rng),
        _years_edu_codes(n, numerical_domain, edu, rng),
        _commute_codes(n, numerical_domain, rng),
        rng.choice(2, size=n, p=[0.49, 0.51]),
        rng.choice(len(_RACE_PROBS), size=n, p=_RACE_PROBS),
        rng.choice(len(_MARITAL_PROBS), size=n, p=_MARITAL_PROBS),
        rng.choice(len(_REGION_PROBS), size=n, p=_REGION_PROBS),
        edu,
    ]
    return Dataset(schema, np.column_stack(cols), validate=False)
