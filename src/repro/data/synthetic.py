"""Synthetic dataset generators.

The paper evaluates on two synthetic families (Section 6.1):

* **Uniform** — every attribute value equally likely;
* **Normal** — values drawn from a normal covering the whole domain, mean at
  the domain midpoint (a skewed-toward-center distribution).

We additionally provide Zipf and explicitly correlated generators, used by
ablation benchmarks and tests that need non-independent attribute pairs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import DataError
from repro.rng import RngLike, ensure_rng
from repro.schema import Schema
from repro.schema.attribute import categorical, numerical


def _build_schema(num_numerical: int, num_categorical: int,
                  numerical_domain: int, categorical_domain: int) -> Schema:
    attrs = []
    for i in range(num_numerical):
        attrs.append(numerical(f"num_{i}", numerical_domain))
    for i in range(num_categorical):
        attrs.append(categorical(f"cat_{i}", categorical_domain))
    return Schema(attrs)


def uniform_dataset(n: int, num_numerical: int = 3, num_categorical: int = 3,
                    numerical_domain: int = 100, categorical_domain: int = 8,
                    rng: RngLike = None) -> Dataset:
    """The paper's *Uniform* dataset: all values sampled uniformly."""
    rng = ensure_rng(rng)
    schema = _build_schema(num_numerical, num_categorical,
                           numerical_domain, categorical_domain)
    cols = [rng.integers(0, a.domain_size, size=n) for a in schema]
    return Dataset(schema, np.column_stack(cols) if cols else
                   np.empty((n, 0), dtype=np.int64), validate=False)


def _truncated_normal_codes(n: int, domain: int,
                            rng: np.random.Generator,
                            mean_frac: float = 0.5,
                            std_frac: float = 1.0 / 6.0) -> np.ndarray:
    """Normal draws over ``[0, domain)``, clipped to the domain edges.

    ``std_frac`` of the domain is one standard deviation; the default makes
    +-3 sigma span the whole domain ("set to cover all the domains").
    """
    mean = mean_frac * (domain - 1)
    std = max(std_frac * domain, 1e-9)
    draws = rng.normal(mean, std, size=n)
    return np.clip(np.rint(draws), 0, domain - 1).astype(np.int64)


def normal_dataset(n: int, num_numerical: int = 3, num_categorical: int = 3,
                   numerical_domain: int = 100, categorical_domain: int = 8,
                   rng: RngLike = None) -> Dataset:
    """The paper's *Normal* dataset: skewed draws centered mid-domain.

    Both numerical and categorical attributes are drawn from the truncated
    normal so the categorical marginals are unbalanced too.
    """
    rng = ensure_rng(rng)
    schema = _build_schema(num_numerical, num_categorical,
                           numerical_domain, categorical_domain)
    cols = [_truncated_normal_codes(n, a.domain_size, rng) for a in schema]
    return Dataset(schema, np.column_stack(cols), validate=False)


def zipf_dataset(n: int, num_numerical: int = 3, num_categorical: int = 3,
                 numerical_domain: int = 100, categorical_domain: int = 8,
                 exponent: float = 1.2, rng: RngLike = None) -> Dataset:
    """Heavy-tailed dataset: every attribute follows a Zipf(``exponent``)."""
    if exponent <= 0:
        raise DataError(f"zipf exponent must be positive, got {exponent}")
    rng = ensure_rng(rng)
    schema = _build_schema(num_numerical, num_categorical,
                           numerical_domain, categorical_domain)
    cols = []
    for attr in schema:
        weights = 1.0 / np.arange(1, attr.domain_size + 1) ** exponent
        probs = weights / weights.sum()
        cols.append(rng.choice(attr.domain_size, size=n, p=probs))
    return Dataset(schema, np.column_stack(cols), validate=False)


def correlated_pair_dataset(n: int, domain: int = 64, noise: float = 0.1,
                            rng: RngLike = None) -> Dataset:
    """Two strongly correlated numerical attributes plus one categorical.

    ``num_1 = num_0 + N(0, noise * domain)`` clipped; the categorical is a
    coarse bucketing of ``num_0``, so all three pairwise marginals are far
    from independent. Used to exercise the consistency/response-matrix paths.
    """
    rng = ensure_rng(rng)
    base = rng.integers(0, domain, size=n)
    jitter = rng.normal(0, max(noise * domain, 1e-9), size=n)
    partner = np.clip(np.rint(base + jitter), 0, domain - 1).astype(np.int64)
    buckets = np.minimum(base * 4 // domain, 3)
    schema = Schema([
        numerical("num_0", domain),
        numerical("num_1", domain),
        categorical("cat_0", 4),
    ])
    records = np.column_stack([base, partner, buckets])
    return Dataset(schema, records, validate=False)


def mixed_domain_dataset(n: int, numerical_domains: Sequence[int],
                         categorical_domains: Sequence[int],
                         rng: RngLike = None) -> Dataset:
    """Uniform dataset with *different* domain sizes per attribute.

    FELIP explicitly supports heterogeneous domains (unlike TDG/HDG); tests
    and ablations use this generator to exercise that path.
    """
    rng = ensure_rng(rng)
    attrs = [numerical(f"num_{i}", d)
             for i, d in enumerate(numerical_domains)]
    attrs += [categorical(f"cat_{i}", d)
              for i, d in enumerate(categorical_domains)]
    schema = Schema(attrs)
    cols = [rng.integers(0, a.domain_size, size=n) for a in schema]
    return Dataset(schema, np.column_stack(cols), validate=False)
