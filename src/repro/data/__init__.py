"""Dataset containers and generators (synthetic and real-data substitutes)."""

from repro.data.dataset import Dataset
from repro.data.synthetic import (
    correlated_pair_dataset,
    normal_dataset,
    uniform_dataset,
    zipf_dataset,
)
from repro.data.ipums import ipums_like_dataset
from repro.data.loan import loan_like_dataset
from repro.data.transforms import (
    build_dataset,
    discretize_numeric,
    encode_categorical,
)

__all__ = [
    "Dataset",
    "build_dataset",
    "discretize_numeric",
    "encode_categorical",
    "uniform_dataset",
    "normal_dataset",
    "zipf_dataset",
    "correlated_pair_dataset",
    "ipums_like_dataset",
    "loan_like_dataset",
]
