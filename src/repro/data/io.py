"""CSV persistence for integer-coded datasets.

Format: a header row ``name:kind:domain[:lo:hi]`` per column followed by the
integer codes. This keeps the schema self-describing so a saved dataset can
be reloaded without external metadata.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import DataError
from repro.schema import Schema
from repro.schema.attribute import (
    Attribute,
    CategoricalAttribute,
    NumericalAttribute,
)

PathLike = Union[str, Path]


def _header_field(attr: Attribute) -> str:
    if attr.is_numerical:
        if attr.lo is not None:
            return f"{attr.name}:num:{attr.domain_size}:{attr.lo}:{attr.hi}"
        return f"{attr.name}:num:{attr.domain_size}"
    return f"{attr.name}:cat:{attr.domain_size}"


def _parse_header_field(field: str) -> Attribute:
    parts = field.split(":")
    if len(parts) not in (3, 5):
        raise DataError(f"malformed header field {field!r}")
    name, kind, domain = parts[0], parts[1], int(parts[2])
    if kind == "num":
        lo = hi = None
        if len(parts) == 5:
            lo, hi = float(parts[3]), float(parts[4])
        return NumericalAttribute(name=name, domain_size=domain, lo=lo, hi=hi)
    if kind == "cat":
        return CategoricalAttribute(name=name, domain_size=domain)
    raise DataError(f"unknown attribute kind {kind!r} in {field!r}")


def save_csv(dataset: Dataset, path: PathLike) -> None:
    """Write ``dataset`` to ``path`` with a self-describing header."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([_header_field(a) for a in dataset.schema])
        writer.writerows(dataset.records.tolist())


def load_csv(path: PathLike) -> Dataset:
    """Read a dataset previously written by :func:`save_csv`."""
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path}: empty file") from None
        schema = Schema([_parse_header_field(f) for f in header])
        rows: List[List[int]] = []
        for lineno, row in enumerate(reader, start=2):
            if len(row) != len(schema):
                raise DataError(
                    f"{path}:{lineno}: expected {len(schema)} columns, "
                    f"got {len(row)}"
                )
            try:
                rows.append([int(v) for v in row])
            except ValueError as exc:
                raise DataError(f"{path}:{lineno}: {exc}") from None
    records = (np.asarray(rows, dtype=np.int64) if rows
               else np.empty((0, len(schema)), dtype=np.int64))
    return Dataset(schema, records)
