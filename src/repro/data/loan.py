"""Lending-Club-like synthetic loan-book generator.

The paper samples 2 million accepted-loan records from the Kaggle Lending
Club dump (10 attributes, 5 categorical + 5 numerical). The dump is not
available offline, so this module synthesizes a loan book with the same
schema and the distributional features that matter to the experiments:

* ``loan_amount`` — log-normal, clustered at round figures;
* ``interest_rate`` — beta-shaped, strongly tied to ``grade``;
* ``annual_income`` — heavy-tailed log-normal;
* ``dti`` (debt-to-income) — right-skewed gamma;
* ``credit_score`` — left-skewed normal near the top of the scale and tied
  to ``grade`` in the opposite direction of ``interest_rate``;
* ``grade`` — seven unbalanced classes (A..G);
* ``term`` / ``home_ownership`` / ``purpose`` / ``verification`` —
  unbalanced categoricals (``purpose`` approximately Zipf).

See DESIGN.md §5 for the substitution rationale.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.rng import RngLike, ensure_rng
from repro.schema import Schema
from repro.schema.attribute import categorical, numerical

_GRADE_PROBS = np.array([0.17, 0.29, 0.27, 0.15, 0.08, 0.03, 0.01])
_PURPOSES = ("debt_consolidation", "credit_card", "home_improvement",
             "major_purchase", "medical", "small_business", "car", "other")


def loan_schema(numerical_domain: int = 100) -> Schema:
    """Schema of the synthetic loan book: 5 numerical + 5 categorical."""
    return Schema([
        numerical("loan_amount", numerical_domain, lo=500.0, hi=40_000.0),
        numerical("interest_rate", numerical_domain, lo=5.0, hi=31.0),
        numerical("annual_income", numerical_domain, lo=0.0, hi=400_000.0),
        numerical("dti", numerical_domain, lo=0.0, hi=50.0),
        numerical("credit_score", numerical_domain, lo=300.0, hi=850.0),
        categorical("grade", ("A", "B", "C", "D", "E", "F", "G")),
        categorical("term", ("36m", "60m")),
        categorical("home_ownership", ("rent", "mortgage", "own")),
        categorical("purpose", _PURPOSES),
        categorical("verification", ("verified", "source_verified",
                                     "not_verified")),
    ])


def _zipf_probs(size: int, exponent: float = 1.1) -> np.ndarray:
    weights = 1.0 / np.arange(1, size + 1) ** exponent
    return weights / weights.sum()


def _to_domain(draws: np.ndarray, domain: int) -> np.ndarray:
    return np.clip(np.rint(draws * (domain - 1)), 0, domain - 1).astype(
        np.int64)


def loan_like_dataset(n: int, numerical_domain: int = 100,
                      rng: RngLike = None) -> Dataset:
    """Generate a loan-book-shaped dataset with the Lending Club schema."""
    rng = ensure_rng(rng)
    schema = loan_schema(numerical_domain)

    grade = rng.choice(len(_GRADE_PROBS), size=n, p=_GRADE_PROBS)
    grade_frac = grade / (len(_GRADE_PROBS) - 1)

    amount = rng.lognormal(mean=9.4, sigma=0.55, size=n)
    amount_frac = (np.log(amount) - 7.0) / 4.0

    # Interest rate rises with grade (worse grade -> higher rate); credit
    # score falls with it. These opposing correlations stress the pairwise
    # estimation machinery the same way the real loan data does.
    rate_frac = np.clip(
        0.10 + 0.75 * grade_frac + rng.normal(0, 0.06, size=n), 0.0, 1.0)
    score_frac = np.clip(
        0.85 - 0.55 * grade_frac + rng.normal(0, 0.07, size=n), 0.0, 1.0)

    income = rng.lognormal(mean=11.1, sigma=0.6, size=n)
    income_frac = np.clip((np.log(income) - 9.0) / 4.5, 0.0, 1.0)

    dti_frac = np.clip(rng.gamma(shape=2.2, scale=0.16, size=n), 0.0, 1.0)

    cols = [
        _to_domain(np.clip(amount_frac, 0.0, 1.0), numerical_domain),
        _to_domain(rate_frac, numerical_domain),
        _to_domain(income_frac, numerical_domain),
        _to_domain(dti_frac, numerical_domain),
        _to_domain(score_frac, numerical_domain),
        grade,
        rng.choice(2, size=n, p=[0.72, 0.28]),
        rng.choice(3, size=n, p=[0.40, 0.49, 0.11]),
        rng.choice(len(_PURPOSES), size=n, p=_zipf_probs(len(_PURPOSES))),
        rng.choice(3, size=n, p=[0.32, 0.38, 0.30]),
    ]
    return Dataset(schema, np.column_stack(cols), validate=False)
