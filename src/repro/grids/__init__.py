"""Grids: binned 1-D and 2-D views of attribute domains.

FELIP collects user reports on grids — binnings of one attribute (1-D) or
one attribute pair (2-D). This package provides the binning primitive (with
near-equal but *not necessarily equal* cell widths, FELIP's answer to
TDG/HDG's divisibility constraint), the grid specifications, and the
error-model-driven optimal sizing of Section 5.2.
"""

from repro.grids.binning import Binning
from repro.grids.grid import Grid1D, Grid2D, GridEstimate
from repro.grids.sizing import (
    GridPlanning,
    SizingParams,
    error_1d_numerical,
    error_2d_num_cat,
    error_2d_numerical,
    optimal_size_1d_numerical,
    optimal_size_2d_num_cat,
    optimal_size_2d_numerical,
    plan_grid,
)

__all__ = [
    "Binning",
    "Grid1D",
    "Grid2D",
    "GridEstimate",
    "SizingParams",
    "GridPlanning",
    "error_1d_numerical",
    "error_2d_numerical",
    "error_2d_num_cat",
    "optimal_size_1d_numerical",
    "optimal_size_2d_numerical",
    "optimal_size_2d_num_cat",
    "plan_grid",
]
