"""Numeric solvers used by grid sizing.

The paper minimizes each grid's predicted error by zeroing its derivative
"using the bisection method in all scenarios" (Section 5.2). Every
derivative involved is monotonically increasing in the variable being
solved, so plain bisection on a sign change is exact and robust. After the
continuous optimum we refine over neighboring integers against the actual
objective, since granularities are integer cell counts.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.errors import GridError


def bisect_increasing_root(fn: Callable[[float], float], lo: float,
                           hi: float, tol: float = 1e-10,
                           max_iter: int = 200) -> float:
    """Root of an increasing function on ``[lo, hi]``.

    If ``fn`` has no sign change on the interval the nearer endpoint is
    returned (the constrained optimum sits on the boundary).
    """
    if lo > hi:
        raise GridError(f"empty bracket [{lo}, {hi}]")
    f_lo, f_hi = fn(lo), fn(hi)
    if f_lo >= 0.0:
        return lo
    if f_hi <= 0.0:
        return hi
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if hi - lo < tol:
            return mid
        if fn(mid) < 0.0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def refine_integer_1d(objective: Callable[[int], float], continuous: float,
                      lo: int, hi: int) -> Tuple[int, float]:
    """Best integer near ``continuous`` by direct objective evaluation.

    Checks floor/ceil plus one neighbor each side, clamped to ``[lo, hi]``.
    Returns ``(argmin, objective(argmin))``.
    """
    if lo > hi:
        raise GridError(f"empty integer range [{lo}, {hi}]")
    center = int(round(continuous))
    candidates = {max(lo, min(hi, c))
                  for c in (center - 1, center, center + 1)}
    best = min(candidates, key=objective)
    return best, objective(best)


def refine_integer_2d(objective: Callable[[int, int], float],
                      continuous: Tuple[float, float],
                      lo: Tuple[int, int],
                      hi: Tuple[int, int]) -> Tuple[int, int, float]:
    """2-D integer refinement: local search on the 3x3 neighborhood.

    Greedy hill descent from the rounded continuous optimum; the objectives
    here are unimodal along axes, so a short local search suffices.
    """
    cx = max(lo[0], min(hi[0], int(round(continuous[0]))))
    cy = max(lo[1], min(hi[1], int(round(continuous[1]))))
    best = (cx, cy)
    best_val = objective(cx, cy)
    for _ in range(64):
        improved = False
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                x = max(lo[0], min(hi[0], best[0] + dx))
                y = max(lo[1], min(hi[1], best[1] + dy))
                val = objective(x, y)
                if val < best_val - 1e-15:
                    best, best_val = (x, y), val
                    improved = True
        if not improved:
            break
    return best[0], best[1], best_val


def coordinate_descent(solve_x: Callable[[float], float],
                       solve_y: Callable[[float], float],
                       x0: float, y0: float, tol: float = 1e-6,
                       max_iter: int = 100) -> Tuple[float, float]:
    """Alternate exact 1-D solves until the point stops moving.

    ``solve_x(y)`` returns the optimal x for fixed y and vice versa. Used
    for the numeric x numeric 2-D sizing system (two coupled stationarity
    equations).
    """
    x, y = x0, y0
    for _ in range(max_iter):
        new_x = solve_x(y)
        new_y = solve_y(new_x)
        if abs(new_x - x) < tol and abs(new_y - y) < tol:
            return new_x, new_y
        x, y = new_x, new_y
    return x, y
