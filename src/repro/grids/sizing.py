"""Optimal grid sizing (paper, Section 5.2).

Each grid's predicted squared error is the sum of a *noise-and-sampling*
term (grows with cell count: more cells inside the query rectangle, each
carrying independent LDP noise) and a *non-uniformity* term (shrinks with
cell count: finer cells mean less mass misattributed by the within-cell
uniformity assumption). The optimum balances the two, and depends on the
grid type, the protocol, the query selectivity ``r``, the budget ε, the
population ``n`` and the group count ``m``.

Closed forms exist for the OLH cases (paper Eq. 5 and the numeric x
categorical analogue); the GRR cases and the numeric x numeric system are
solved by bisection on the (monotone) stationarity conditions, per the
paper. Continuous optima are then refined over neighboring integers against
the exact objective, since granularities are integer cell counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError, GridError
from repro.fo.registry import adaptive_candidates, get as protocol_spec
from repro.grids.solvers import (
    bisect_increasing_root,
    coordinate_descent,
    refine_integer_1d,
    refine_integer_2d,
)


@dataclass(frozen=True)
class SizingParams:
    """Shared inputs of every sizing computation.

    Attributes
    ----------
    epsilon:
        Privacy budget ε (each user spends all of it on one grid).
    n:
        Total population size.
    m:
        Number of user groups (== number of grids); each grid is estimated
        from roughly ``n / m`` reports.
    alpha1, alpha2:
        Non-uniformity constants for 1-D and 2-D grids (paper defaults 0.7
        and 0.03).
    """

    epsilon: float
    n: int
    m: int
    alpha1: float = 0.7
    alpha2: float = 0.03

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ConfigurationError(
                f"epsilon must be positive, got {self.epsilon}")
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        if self.m < 1:
            raise ConfigurationError(f"m must be >= 1, got {self.m}")
        if self.alpha1 <= 0 or self.alpha2 <= 0:
            raise ConfigurationError("alpha constants must be positive")

    @property
    def cell_variance_olh(self) -> float:
        """Per-cell OLH variance with population partitioning: 4me^ε/n(e^ε−1)²."""
        e = math.exp(self.epsilon)
        return 4.0 * e * self.m / (self.n * (e - 1) ** 2)

    def cell_variance_grr(self, num_cells: int) -> float:
        """Per-cell GRR variance for an ``L``-cell grid: m(e^ε+L−2)/n(e^ε−1)²."""
        e = math.exp(self.epsilon)
        return (self.m * (e + max(num_cells, 1) - 2)
                / (self.n * (e - 1) ** 2))

    def cell_variance(self, protocol: str, num_cells: int) -> float:
        """Per-cell variance of ``protocol`` on an ``L``-cell grid.

        Dispatches to the protocol's registered planning variance model
        (:attr:`repro.fo.registry.ProtocolSpec.cell_variance`); unknown
        names raise the registry's unified
        :class:`~repro.errors.ConfigurationError`.
        """
        return protocol_spec(protocol).cell_variance(self, num_cells)


def variance_class(protocol: str) -> str:
    """Map a protocol to its variance class for the sizing solvers.

    ``"grr"`` marks specs whose per-cell variance grows with the cell
    count (the solvers then bisect the GRR-style stationarity condition);
    everything else sizes like OLH — size-independent noise with a closed
    form (the unary/histogram encodings, square wave, AHEAD, and HR all
    register that way).
    """
    spec = protocol_spec(protocol)
    return "grr" if spec.variance_grows_with_cells else "olh"


def _check_selectivity(r: float, name: str = "selectivity") -> float:
    r = float(r)
    if not 0.0 < r <= 1.0:
        raise GridError(f"{name} must be in (0, 1], got {r}")
    return r


# ---------------------------------------------------------------------------
# Predicted-error objectives (paper Eqs. 3, 4, 9, 10, 11, 12)
# ---------------------------------------------------------------------------

def error_1d_numerical(l: float, r: float, params: SizingParams,
                       protocol: str) -> float:
    """Total predicted squared error of a 1-D numerical grid with l cells."""
    nonuni = (params.alpha1 / l) ** 2
    noise = l * r * params.cell_variance(protocol, int(round(l)))
    return nonuni + noise


def error_1d_categorical(d: int, r: float, params: SizingParams,
                         protocol: str) -> float:
    """1-D categorical grid: pure noise, cell count fixed at the domain."""
    return d * r * params.cell_variance(protocol, d)


def error_2d_numerical(lx: float, ly: float, rx: float, ry: float,
                       params: SizingParams, protocol: str) -> float:
    """numeric x numeric 2-D grid error (paper Eqs. 9 / 10)."""
    nonuni = (2.0 * params.alpha2 * (lx * rx + ly * ry) / (lx * ly)) ** 2
    noise = (lx * rx * ly * ry
             * params.cell_variance(protocol, int(round(lx * ly))))
    return nonuni + noise


def error_2d_num_cat(lx: float, ly: int, rx: float, ry: float,
                     params: SizingParams, protocol: str) -> float:
    """numeric(x) x categorical(y) grid error (paper Eqs. 11 / 12)."""
    nonuni = (2.0 * params.alpha2 * ry / lx) ** 2
    noise = (lx * rx * ly * ry
             * params.cell_variance(protocol, int(round(lx * ly))))
    return nonuni + noise


def error_2d_categorical(dx: int, dy: int, rx: float, ry: float,
                         params: SizingParams, protocol: str) -> float:
    """categorical x categorical grid: pure noise at the full domain product."""
    return dx * rx * dy * ry * params.cell_variance(protocol, dx * dy)


# ---------------------------------------------------------------------------
# Workload-weighted (expected) objectives
#
# The paper's objectives above treat the query selectivity ``r`` as a
# single prior. A declared workload instead gives a per-attribute
# selectivity *distribution*; the expected predicted error over that
# distribution only needs its first two moments ``(E[r], E[r²])``:
# the noise terms are linear in each attribute's ``r`` (so they take
# E[r], with independent attributes making E[r_x r_y] = E[r_x]E[r_y]),
# and the 2-D non-uniformity term is quadratic (so it takes E[r²]).
# With a degenerate histogram (E[r²] = E[r]²) every expected objective
# reduces exactly to its fixed-selectivity counterpart.
# ---------------------------------------------------------------------------

def _check_moments(moments: Tuple[float, float],
                   name: str = "selectivity") -> Tuple[float, float]:
    mean, mean_sq = float(moments[0]), float(moments[1])
    _check_selectivity(mean, f"{name} mean")
    if not mean ** 2 - 1e-12 <= mean_sq <= 1.0:
        raise GridError(
            f"{name} second moment must satisfy E[r]^2 <= E[r^2] <= 1, "
            f"got E[r]={mean}, E[r^2]={mean_sq}")
    return mean, mean_sq


def error_1d_numerical_expected(l: float, moments: Tuple[float, float],
                                params: SizingParams,
                                protocol: str) -> float:
    """Expected 1-D numerical grid error over a selectivity histogram.

    The 1-D objective is linear in ``r``, so the expectation is the plain
    objective at the mean selectivity.
    """
    mean, _ = _check_moments(moments)
    return error_1d_numerical(l, mean, params, protocol)


def error_2d_numerical_expected(lx: float, ly: float,
                                moments_x: Tuple[float, float],
                                moments_y: Tuple[float, float],
                                params: SizingParams,
                                protocol: str) -> float:
    """Expected numeric x numeric grid error over selectivity histograms.

    ``E[(l_x r_x + l_y r_y)²] = l_x² E[r_x²] + 2 l_x l_y E[r_x]E[r_y]
    + l_y² E[r_y²]`` (independent attributes), so the non-uniformity term
    keeps its closed form in the first two moments.
    """
    mx, sx = _check_moments(moments_x, "rx")
    my, sy = _check_moments(moments_y, "ry")
    nonuni = (4.0 * params.alpha2 ** 2
              * (lx * lx * sx + 2.0 * lx * ly * mx * my + ly * ly * sy)
              / (lx * ly) ** 2)
    noise = (lx * mx * ly * my
             * params.cell_variance(protocol, int(round(lx * ly))))
    return nonuni + noise


def error_2d_num_cat_expected(lx: float, ly: int,
                              moments_x: Tuple[float, float],
                              moments_y: Tuple[float, float],
                              params: SizingParams,
                              protocol: str) -> float:
    """Expected numeric(x) x categorical(y) grid error over histograms."""
    mx, _ = _check_moments(moments_x, "rx")
    my, sy = _check_moments(moments_y, "ry")
    nonuni = 4.0 * params.alpha2 ** 2 * sy / lx ** 2
    noise = (lx * mx * ly * my
             * params.cell_variance(protocol, int(round(lx * ly))))
    return nonuni + noise


def error_2d_categorical_expected(dx: int, dy: int,
                                  moments_x: Tuple[float, float],
                                  moments_y: Tuple[float, float],
                                  params: SizingParams,
                                  protocol: str) -> float:
    """Expected categorical x categorical grid error (pure noise)."""
    mx, _ = _check_moments(moments_x, "rx")
    my, _ = _check_moments(moments_y, "ry")
    return error_2d_categorical(dx, dy, mx, my, params, protocol)


# ---------------------------------------------------------------------------
# Optimal sizes
# ---------------------------------------------------------------------------

def _noise_coeff(params: SizingParams) -> Tuple[float, float]:
    """(A, B): OLH noise coefficient, GRR base coefficient m/n(e^ε−1)²."""
    e = math.exp(params.epsilon)
    base = params.m / (params.n * (e - 1) ** 2)
    return 4.0 * e * base, base


def optimal_size_1d_numerical(d: int, r: float, params: SizingParams,
                              protocol: str) -> Tuple[int, float]:
    """Optimal cell count for a 1-D numerical grid; returns (l, error).

    OLH: closed form (paper Eq. 5). GRR: bisection on the derivative of
    Eq. 4, which is increasing in ``l``.
    """
    r = _check_selectivity(r)
    if d < 1:
        raise GridError(f"domain must be >= 1, got {d}")
    if d == 1:
        return 1, 0.0
    a1, eps = params.alpha1, params.epsilon
    e = math.exp(eps)
    A, B = _noise_coeff(params)

    if not protocol_spec(protocol).variance_grows_with_cells:
        continuous = ((params.n * a1 ** 2 * (e - 1) ** 2)
                      / (2.0 * params.m * r * e)) ** (1.0 / 3.0)
    else:
        def derivative(l: float) -> float:
            return (-2.0 * a1 ** 2 / l ** 3
                    + r * B * (e - 2.0 + 2.0 * l))
        continuous = bisect_increasing_root(derivative, 1.0, float(d))

    continuous = min(max(continuous, 2.0), float(d))
    return refine_integer_1d(
        lambda l: error_1d_numerical(l, r, params, protocol),
        continuous, 2, d)


def optimal_size_2d_numerical(dx: int, dy: int, rx: float, ry: float,
                              params: SizingParams,
                              protocol: str) -> Tuple[int, int, float]:
    """Optimal (l_x, l_y) for a numeric x numeric grid; returns errors too.

    Solves the two coupled stationarity equations by coordinate descent,
    each inner solve a bisection (the partial derivatives are increasing in
    their own variable), then refines on the integer lattice.
    """
    rx = _check_selectivity(rx, "rx")
    ry = _check_selectivity(ry, "ry")
    if dx < 2 or dy < 2:
        # Degenerate axes cannot be binned further; fall back to exact cells.
        lx, ly = max(dx, 1), max(dy, 1)
        return lx, ly, error_2d_numerical(lx, ly, rx, ry, params, protocol)
    a2, eps = params.alpha2, params.epsilon
    e = math.exp(eps)
    A, B = _noise_coeff(params)
    size_independent = not protocol_spec(protocol).variance_grows_with_cells

    def d_dx(lx: float, ly: float) -> float:
        nonuni = -8.0 * a2 ** 2 * ry * (lx * rx + ly * ry) / (lx ** 3 * ly)
        if size_independent:
            return nonuni + A * rx * ry * ly
        return nonuni + B * rx * ry * ly * (e - 2.0 + 2.0 * lx * ly)

    def d_dy(lx: float, ly: float) -> float:
        nonuni = -8.0 * a2 ** 2 * rx * (lx * rx + ly * ry) / (ly ** 3 * lx)
        if size_independent:
            return nonuni + A * rx * ry * lx
        return nonuni + B * rx * ry * lx * (e - 2.0 + 2.0 * lx * ly)

    lx, ly = coordinate_descent(
        solve_x=lambda y: bisect_increasing_root(
            lambda x: d_dx(x, y), 1.0, float(dx)),
        solve_y=lambda x: bisect_increasing_root(
            lambda y: d_dy(x, y), 1.0, float(dy)),
        x0=min(8.0, float(dx)), y0=min(8.0, float(dy)))

    lx = min(max(lx, 2.0), float(dx))
    ly = min(max(ly, 2.0), float(dy))
    return refine_integer_2d(
        lambda x, y: error_2d_numerical(x, y, rx, ry, params, protocol),
        (lx, ly), (2, 2), (dx, dy))


def optimal_size_2d_num_cat(d_num: int, d_cat: int, rx: float, ry: float,
                            params: SizingParams,
                            protocol: str) -> Tuple[int, float]:
    """Optimal numeric-axis cell count when the y axis is categorical.

    The categorical axis is fixed at ``l_y = d_cat`` (one cell per value);
    only the numeric axis length is optimized (paper Eqs. 11 / 12).
    Returns ``(l_x, error)``.
    """
    rx = _check_selectivity(rx, "rx")
    ry = _check_selectivity(ry, "ry")
    if d_num == 1:
        return 1, error_2d_num_cat(1, d_cat, rx, ry, params, protocol)
    a2, eps = params.alpha2, params.epsilon
    e = math.exp(eps)
    A, B = _noise_coeff(params)

    if not protocol_spec(protocol).variance_grows_with_cells:
        continuous = (8.0 * a2 ** 2 * ry
                      / (A * rx * d_cat)) ** (1.0 / 3.0)
    else:
        def derivative(lx: float) -> float:
            return (-8.0 * a2 ** 2 * ry ** 2 / lx ** 3
                    + B * rx * ry * d_cat * (e - 2.0 + 2.0 * lx * d_cat))
        continuous = bisect_increasing_root(derivative, 1.0, float(d_num))

    continuous = min(max(continuous, 2.0), float(d_num))
    return refine_integer_1d(
        lambda lx: error_2d_num_cat(lx, d_cat, rx, ry, params, protocol),
        continuous, 2, d_num)


# ---------------------------------------------------------------------------
# Per-grid planning (size + adaptive protocol choice, Section 5.3)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GridPlanning:
    """A sized grid with its chosen protocol and predicted error.

    ``ly`` is ``None`` for 1-D grids.
    """

    lx: int
    ly: Optional[int]
    protocol: str
    predicted_error: float

    @property
    def num_cells(self) -> int:
        return self.lx if self.ly is None else self.lx * self.ly


def plan_grid(domain_x: int, numerical_x: bool, r_x: float,
              params: SizingParams,
              domain_y: Optional[int] = None,
              numerical_y: bool = False, r_y: float = 1.0,
              protocols: Optional[Sequence[str]] = None,
              moments_x: Optional[Tuple[float, float]] = None,
              moments_y: Optional[Tuple[float, float]] = None
              ) -> GridPlanning:
    """Size one grid under every candidate protocol; keep the best.

    This is the Adaptive Frequency Oracle applied at planning time: the
    GRR-optimal and OLH-optimal sizes generally differ, so we compare the
    *minimized* predicted error of each protocol and report with the winner.
    For fixed-size (categorical) grids this reduces exactly to the paper's
    Eq. 13 variance comparison.

    ``protocols=None`` (the default) uses the registry's adaptive
    candidates, resolved at call time so protocols registered after this
    module was imported still participate. Candidates are compared in
    registration order with a strict-improvement rule, preserving the
    paper's tie-break toward the earlier (GRR) candidate.

    ``moments_x``/``moments_y`` switch the objective to the
    workload-weighted expected error over a selectivity histogram with
    the given ``(E[r], E[r²])`` moments (the fixed selectivities then
    only seed the continuous solvers); ``None`` keeps the paper's
    fixed-selectivity objective bit-for-bit.
    """
    if protocols is None:
        protocols = tuple(s.name for s in adaptive_candidates())
    if not protocols:
        raise ConfigurationError("need at least one candidate protocol")
    if moments_x is not None or moments_y is not None:
        return _plan_grid_expected(
            domain_x, numerical_x, params, protocols,
            moments_x if moments_x is not None else (r_x, r_x * r_x),
            domain_y, numerical_y,
            moments_y if moments_y is not None else (r_y, r_y * r_y))
    best: Optional[GridPlanning] = None
    for protocol in protocols:
        if domain_y is None:
            if numerical_x:
                lx, err = optimal_size_1d_numerical(domain_x, r_x, params,
                                                    protocol)
            else:
                lx, err = domain_x, error_1d_categorical(domain_x, r_x,
                                                         params, protocol)
            candidate = GridPlanning(lx=lx, ly=None, protocol=protocol,
                                     predicted_error=err)
        elif numerical_x and numerical_y:
            lx, ly, err = optimal_size_2d_numerical(domain_x, domain_y,
                                                    r_x, r_y, params,
                                                    protocol)
            candidate = GridPlanning(lx=lx, ly=ly, protocol=protocol,
                                     predicted_error=err)
        elif numerical_x and not numerical_y:
            lx, err = optimal_size_2d_num_cat(domain_x, domain_y, r_x, r_y,
                                              params, protocol)
            candidate = GridPlanning(lx=lx, ly=domain_y, protocol=protocol,
                                     predicted_error=err)
        elif not numerical_x and numerical_y:
            ly, err = optimal_size_2d_num_cat(domain_y, domain_x, r_y, r_x,
                                              params, protocol)
            candidate = GridPlanning(lx=domain_x, ly=ly, protocol=protocol,
                                     predicted_error=err)
        else:
            err = error_2d_categorical(domain_x, domain_y, r_x, r_y,
                                       params, protocol)
            candidate = GridPlanning(lx=domain_x, ly=domain_y,
                                     protocol=protocol, predicted_error=err)
        if best is None or candidate.predicted_error < best.predicted_error:
            best = candidate
    return best


def _plan_grid_expected(domain_x: int, numerical_x: bool,
                        params: SizingParams, protocols: Sequence[str],
                        moments_x: Tuple[float, float],
                        domain_y: Optional[int], numerical_y: bool,
                        moments_y: Tuple[float, float]) -> GridPlanning:
    """Size one grid against the expected-error objectives.

    The fixed-selectivity solvers at the mean selectivities seed the
    search (the expected objectives differ from them only through the
    second-moment non-uniformity terms), then the integer refinement
    re-ranks against the exact expected objective.
    """
    mx, _ = _check_moments(moments_x, "rx")
    my, _ = _check_moments(moments_y, "ry")
    best: Optional[GridPlanning] = None
    for protocol in protocols:
        if domain_y is None:
            if numerical_x:
                seed, _ = optimal_size_1d_numerical(domain_x, mx, params,
                                                    protocol)
                lx, err = refine_integer_1d(
                    lambda l: error_1d_numerical_expected(
                        l, moments_x, params, protocol),
                    float(seed), min(2, domain_x), domain_x)
            else:
                lx = domain_x
                err = error_1d_categorical(domain_x, mx, params, protocol)
            candidate = GridPlanning(lx=lx, ly=None, protocol=protocol,
                                     predicted_error=err)
        elif numerical_x and numerical_y:
            sx, sy, _ = optimal_size_2d_numerical(domain_x, domain_y,
                                                  mx, my, params, protocol)
            lx, ly, err = refine_integer_2d(
                lambda x, y: error_2d_numerical_expected(
                    x, y, moments_x, moments_y, params, protocol),
                (float(sx), float(sy)),
                (min(2, domain_x), min(2, domain_y)), (domain_x, domain_y))
            candidate = GridPlanning(lx=lx, ly=ly, protocol=protocol,
                                     predicted_error=err)
        elif numerical_x and not numerical_y:
            seed, _ = optimal_size_2d_num_cat(domain_x, domain_y, mx, my,
                                              params, protocol)
            lx, err = refine_integer_1d(
                lambda l: error_2d_num_cat_expected(
                    l, domain_y, moments_x, moments_y, params, protocol),
                float(seed), min(2, domain_x), domain_x)
            candidate = GridPlanning(lx=lx, ly=domain_y, protocol=protocol,
                                     predicted_error=err)
        elif not numerical_x and numerical_y:
            seed, _ = optimal_size_2d_num_cat(domain_y, domain_x, my, mx,
                                              params, protocol)
            ly, err = refine_integer_1d(
                lambda l: error_2d_num_cat_expected(
                    l, domain_x, moments_y, moments_x, params, protocol),
                float(seed), min(2, domain_y), domain_y)
            candidate = GridPlanning(lx=domain_x, ly=ly, protocol=protocol,
                                     predicted_error=err)
        else:
            err = error_2d_categorical_expected(domain_x, domain_y,
                                                moments_x, moments_y,
                                                params, protocol)
            candidate = GridPlanning(lx=domain_x, ly=domain_y,
                                     protocol=protocol, predicted_error=err)
        if best is None or candidate.predicted_error < best.predicted_error:
            best = candidate
    return best
