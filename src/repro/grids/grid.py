"""Grid specifications and estimated grids.

A grid is the object one user group reports on: a binned view of one
attribute (:class:`Grid1D`) or one attribute pair (:class:`Grid2D`). After
aggregation, a :class:`GridEstimate` couples the grid with its estimated
per-cell frequencies and can answer 1-D/2-D sub-queries under the
within-cell uniformity assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import GridError, QueryError
from repro.grids.binning import Binning
from repro.queries.predicate import Predicate
from repro.schema import Attribute


def predicate_cell_weights(binning: Binning, predicate: Predicate,
                           attr: Attribute) -> np.ndarray:
    """Per-cell inclusion weights of ``predicate`` under uniformity.

    Range predicates weight border cells by their overlap fraction; set
    predicates require a trivial binning (categorical axes are never binned)
    and weight member cells 1.
    """
    predicate.validate_for(attr)
    if predicate.is_range:
        lo, hi = predicate.interval
        return binning.range_weights(lo, min(hi, binning.domain_size - 1))
    if not binning.is_trivial:
        raise GridError(
            f"set predicate on {attr.name!r} needs a trivial binning, "
            f"grid has {binning.num_cells} cells over domain "
            f"{binning.domain_size}"
        )
    weights = np.zeros(binning.num_cells, dtype=np.float64)
    weights[np.fromiter(predicate.members, dtype=np.int64)] = 1.0
    return weights


class Grid1D:
    """Binned view of a single attribute (OHG's refinement grids)."""

    def __init__(self, attr_index: int, attribute: Attribute,
                 binning: Binning):
        if binning.domain_size != attribute.domain_size:
            raise GridError(
                f"binning domain {binning.domain_size} != attribute "
                f"{attribute.name!r} domain {attribute.domain_size}"
            )
        self.attr_index = attr_index
        self.attribute = attribute
        self.binning = binning

    @property
    def num_cells(self) -> int:
        """``L``, the report domain size."""
        return self.binning.num_cells

    @property
    def key(self) -> Tuple[int, ...]:
        """Stable identifier: the attribute index tuple."""
        return (self.attr_index,)

    def encode(self, records: np.ndarray) -> np.ndarray:
        """Map full records ``(n, k)`` to this grid's cell indices."""
        return self.encode_columns(records[:, self.attr_index])

    def encode_columns(self, codes: np.ndarray) -> np.ndarray:
        """Map the attribute's code column directly to cell indices.

        The sharded collection executor gathers only the columns a grid
        needs; this entry point skips the full-record slicing of
        :meth:`encode` while producing identical cells.
        """
        return self.binning.cell_of(codes)

    @property
    def column_indices(self) -> Tuple[int, ...]:
        """The record columns :meth:`encode_columns` consumes, in order."""
        return (self.attr_index,)

    def __repr__(self) -> str:
        return (f"Grid1D({self.attribute.name}, "
                f"cells={self.num_cells})")


class Grid2D:
    """Binned view of an attribute pair — FELIP's workhorse."""

    def __init__(self, attr_index_x: int, attr_index_y: int,
                 attribute_x: Attribute, attribute_y: Attribute,
                 binning_x: Binning, binning_y: Binning):
        if attr_index_x == attr_index_y:
            raise GridError("2-D grid needs two distinct attributes")
        if binning_x.domain_size != attribute_x.domain_size:
            raise GridError(
                f"x binning domain {binning_x.domain_size} != "
                f"{attribute_x.name!r} domain {attribute_x.domain_size}"
            )
        if binning_y.domain_size != attribute_y.domain_size:
            raise GridError(
                f"y binning domain {binning_y.domain_size} != "
                f"{attribute_y.name!r} domain {attribute_y.domain_size}"
            )
        self.attr_index_x = attr_index_x
        self.attr_index_y = attr_index_y
        self.attribute_x = attribute_x
        self.attribute_y = attribute_y
        self.binning_x = binning_x
        self.binning_y = binning_y

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.binning_x.num_cells, self.binning_y.num_cells)

    @property
    def num_cells(self) -> int:
        """``L = l_x * l_y``, the report domain size."""
        return self.binning_x.num_cells * self.binning_y.num_cells

    @property
    def key(self) -> Tuple[int, ...]:
        """Stable identifier: the attribute index tuple."""
        return (self.attr_index_x, self.attr_index_y)

    def encode(self, records: np.ndarray) -> np.ndarray:
        """Map full records ``(n, k)`` to flattened cell indices."""
        return self.encode_columns(records[:, self.attr_index_x],
                                   records[:, self.attr_index_y])

    def encode_columns(self, codes_x: np.ndarray,
                       codes_y: np.ndarray) -> np.ndarray:
        """Map the pair's code columns directly to flattened cell indices.

        Column-wise counterpart of :meth:`encode` (see
        :meth:`Grid1D.encode_columns`); row-major cell order is identical.
        """
        cx = self.binning_x.cell_of(codes_x)
        cy = self.binning_y.cell_of(codes_y)
        return cx * self.binning_y.num_cells + cy

    @property
    def column_indices(self) -> Tuple[int, ...]:
        """The record columns :meth:`encode_columns` consumes, in order."""
        return (self.attr_index_x, self.attr_index_y)

    def __repr__(self) -> str:
        return (f"Grid2D({self.attribute_x.name} x {self.attribute_y.name}, "
                f"shape={self.shape})")


@dataclass
class GridEstimate:
    """A grid plus its estimated per-cell frequencies.

    ``frequencies`` is flat (length ``num_cells``); 2-D grids use row-major
    order matching :meth:`Grid2D.encode`. The vector is mutable on purpose:
    post-processing (non-negativity, consistency) edits it in place.
    """

    grid: object
    frequencies: np.ndarray

    def __post_init__(self) -> None:
        self.frequencies = np.asarray(self.frequencies, dtype=np.float64)
        if self.frequencies.shape != (self.grid.num_cells,):
            raise GridError(
                f"frequency vector has shape {self.frequencies.shape}, "
                f"grid has {self.grid.num_cells} cells"
            )

    @property
    def is_2d(self) -> bool:
        return isinstance(self.grid, Grid2D)

    def matrix(self) -> np.ndarray:
        """2-D grids only: frequencies reshaped to ``(l_x, l_y)``."""
        if not self.is_2d:
            raise GridError("matrix() is only defined for 2-D grids")
        return self.frequencies.reshape(self.grid.shape)

    # -- uniformity-assumption query answering -------------------------------

    def answer_1d(self, predicate: Predicate) -> float:
        """1-D grids: weighted cell-mass sum for one predicate."""
        if self.is_2d:
            raise GridError("answer_1d() is only defined for 1-D grids")
        weights = predicate_cell_weights(self.grid.binning, predicate,
                                         self.grid.attribute)
        return float(weights @ self.frequencies)

    def answer_2d(self, predicate_x: Optional[Predicate],
                  predicate_y: Optional[Predicate]) -> float:
        """2-D grids: weighted mass for up to two predicates.

        ``None`` on an axis means unconstrained (weight 1 everywhere), so
        this also answers the grid's two 1-D marginal queries.
        """
        if not self.is_2d:
            raise GridError("answer_2d() is only defined for 2-D grids")
        grid = self.grid
        if predicate_x is None:
            wx = np.ones(grid.binning_x.num_cells)
        else:
            wx = predicate_cell_weights(grid.binning_x, predicate_x,
                                        grid.attribute_x)
        if predicate_y is None:
            wy = np.ones(grid.binning_y.num_cells)
        else:
            wy = predicate_cell_weights(grid.binning_y, predicate_y,
                                        grid.attribute_y)
        return float(wx @ self.matrix() @ wy)

    def marginal_along(self, attr_index: int) -> np.ndarray:
        """Cell-level marginal of one of the grid's attributes."""
        if not self.is_2d:
            if attr_index != self.grid.attr_index:
                raise GridError(
                    f"grid is over attribute {self.grid.attr_index}, "
                    f"not {attr_index}"
                )
            return self.frequencies.copy()
        if attr_index == self.grid.attr_index_x:
            return self.matrix().sum(axis=1)
        if attr_index == self.grid.attr_index_y:
            return self.matrix().sum(axis=0)
        raise GridError(
            f"grid is over attributes {self.grid.key}, not {attr_index}"
        )
