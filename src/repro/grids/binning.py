"""Binning: partition of an integer domain into contiguous cells.

Cell widths are as equal as possible — for a domain of size ``d`` split into
``l`` cells, the first ``d mod l`` cells are one code wider. This is what
lets FELIP pick *any* granularity ``1 <= l <= d`` instead of rounding to a
divisor of ``d`` (Section 3.2's critique of TDG/HDG). A categorical axis is
simply a binning with ``l == d`` (every value its own cell).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GridError


class Binning:
    """Partition of ``{0..domain_size-1}`` into ``num_cells`` ranges.

    The default constructor builds near-equal widths; data-adaptive
    partitions (e.g. from the AHEAD refinement extension) use
    :meth:`from_edges` with arbitrary contiguous cell boundaries.
    """

    def __init__(self, domain_size: int, num_cells: int):
        if domain_size < 1:
            raise GridError(f"domain_size must be >= 1, got {domain_size}")
        if not 1 <= num_cells <= domain_size:
            raise GridError(
                f"num_cells must be in [1, {domain_size}], got {num_cells}"
            )
        self.domain_size = int(domain_size)
        self.num_cells = int(num_cells)
        base, extra = divmod(self.domain_size, self.num_cells)
        widths = np.full(self.num_cells, base, dtype=np.int64)
        widths[:extra] += 1
        #: edges[c] is the first code of cell c; edges[num_cells] == d
        self.edges = np.concatenate(([0], np.cumsum(widths)))
        self._equal_split = (int(base), int(extra))

    @classmethod
    def from_edges(cls, edges) -> "Binning":
        """Binning with explicit cell boundaries.

        ``edges`` must start at 0, end at the domain size, and be strictly
        increasing; cell ``c`` covers codes ``edges[c] .. edges[c+1]-1``.
        """
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 1 or len(edges) < 2:
            raise GridError("edges must be a 1-D array of length >= 2")
        if edges[0] != 0:
            raise GridError(f"edges must start at 0, got {edges[0]}")
        if (np.diff(edges) < 1).any():
            raise GridError("edges must be strictly increasing")
        binning = cls.__new__(cls)
        binning.domain_size = int(edges[-1])
        binning.num_cells = len(edges) - 1
        binning.edges = edges.copy()
        base, extra = divmod(binning.domain_size, binning.num_cells)
        widths = np.diff(binning.edges)
        equal = ((widths[:extra] == base + 1).all()
                 and (widths[extra:] == base).all())
        binning._equal_split = (int(base), int(extra)) if equal else None
        return binning

    def __eq__(self, other) -> bool:
        if not isinstance(other, Binning):
            return NotImplemented
        return (self.domain_size == other.domain_size
                and self.num_cells == other.num_cells
                and np.array_equal(self.edges, other.edges))

    def __repr__(self) -> str:
        return f"Binning(domain_size={self.domain_size}, " \
               f"num_cells={self.num_cells})"

    @property
    def is_trivial(self) -> bool:
        """True when every value has its own cell (categorical axes)."""
        return self.num_cells == self.domain_size

    # -- code <-> cell mapping --------------------------------------------------

    def cell_of(self, codes: np.ndarray) -> np.ndarray:
        """Cell index of each code (vectorized).

        Constructor-built binnings are exact equal splits (the first
        ``d mod l`` cells one code wider), which admits a closed-form cell
        index — pure integer arithmetic instead of a binary search per
        code, and bit-identical to the searchsorted on ``edges`` (the
        fallback for arbitrary :meth:`from_edges` partitions).
        """
        codes = np.asarray(codes)
        if codes.size and (codes.min() < 0
                           or codes.max() >= self.domain_size):
            raise GridError(
                f"codes outside domain [0, {self.domain_size})"
            )
        if self._equal_split is not None:
            base, extra = self._equal_split
            codes = codes.astype(np.int64, copy=False)
            if extra == 0:
                return codes // base
            pivot = extra * (base + 1)
            return np.where(codes < pivot, codes // (base + 1),
                            extra + (codes - pivot) // base)
        return np.searchsorted(self.edges, codes, side="right") - 1

    def bounds(self, cell: int) -> Tuple[int, int]:
        """Inclusive code range ``[lo, hi]`` of ``cell``."""
        if not 0 <= cell < self.num_cells:
            raise GridError(
                f"cell {cell} outside [0, {self.num_cells})"
            )
        return int(self.edges[cell]), int(self.edges[cell + 1] - 1)

    def width(self, cell: int) -> int:
        """Number of codes in ``cell``."""
        lo, hi = self.bounds(cell)
        return hi - lo + 1

    @property
    def widths(self) -> np.ndarray:
        """Vector of all cell widths."""
        return np.diff(self.edges)

    # -- range queries ----------------------------------------------------------

    def covering_cells(self, lo: int, hi: int) -> Tuple[int, int]:
        """Inclusive cell range intersecting the code range ``[lo, hi]``."""
        if lo > hi:
            raise GridError(f"empty code range [{lo}, {hi}]")
        if lo < 0 or hi >= self.domain_size:
            raise GridError(
                f"code range [{lo}, {hi}] outside [0, {self.domain_size})"
            )
        first = int(np.searchsorted(self.edges, lo, side="right") - 1)
        last = int(np.searchsorted(self.edges, hi, side="right") - 1)
        return first, last

    def overlap_fraction(self, cell: int, lo: int, hi: int) -> float:
        """Fraction of ``cell``'s codes inside the code range ``[lo, hi]``.

        This is the uniformity-assumption weight used when a query range
        partially intersects a cell (the source of non-uniformity error).
        """
        c_lo, c_hi = self.bounds(cell)
        inter = min(c_hi, hi) - max(c_lo, lo) + 1
        if inter <= 0:
            return 0.0
        return inter / (c_hi - c_lo + 1)

    def range_weights(self, lo: int, hi: int) -> np.ndarray:
        """Per-cell overlap fractions of the code range ``[lo, hi]``.

        Zero outside the covering cells; interior cells get weight 1, the
        two border cells their partial fractions.
        """
        weights = np.zeros(self.num_cells, dtype=np.float64)
        first, last = self.covering_cells(lo, hi)
        for cell in range(first, last + 1):
            weights[cell] = self.overlap_fraction(cell, lo, hi)
        return weights
