"""Exception hierarchy for the FELIP reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate on the specific failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class SchemaError(ReproError):
    """An attribute or schema definition is invalid."""


class DataError(ReproError):
    """A dataset is malformed or inconsistent with its schema."""


class QueryError(ReproError):
    """A query or predicate is invalid for the schema it targets."""


class PrivacyError(ReproError):
    """A privacy parameter (e.g. the budget epsilon) is invalid."""


class ProtocolError(ReproError):
    """A frequency-oracle protocol was misused (wrong domain, bad report...)."""


class IngestError(ReproError):
    """An untrusted report failed ingestion validation under a strict policy.

    Raised by :func:`repro.robustness.sanitize_report` when
    ``IngestPolicy(mode="strict")`` meets a malformed or infeasible report;
    the ``drop`` and ``quarantine`` modes record the rejection in an
    :class:`~repro.robustness.IngestStats` counter instead of raising.
    """


class WireError(ReproError):
    """A binary wire frame is malformed, truncated, or corrupted.

    Raised by :mod:`repro.wire` when a frame fails structural decoding:
    bad magic, unsupported version, CRC mismatch, truncation, or a payload
    that cannot be mapped back to a report. A frame that decodes cleanly
    but carries forged *parameters* is not a :class:`WireError` — it is
    handed to the ingestion sanitizers, whose policy decides its fate.
    """


class ClientError(ReproError):
    """The wire client could not deliver its buffered frames.

    Raised by :class:`repro.service.client.WireClient` when the server
    stays unreachable past the configured reconnect budget, refuses the
    session (e.g. the peer is banned), or stops acknowledging frames for
    longer than the stall budget. Transient disconnects never surface as
    this error — the client reconnects and retransmits silently; a
    :class:`ClientError` means delivery genuinely failed and the caller
    owns whatever is still buffered.
    """


class CheckpointError(ReproError):
    """A streaming-collector checkpoint is corrupt or mismatched.

    Raised by :mod:`repro.service.checkpoint` when restoring a snapshot
    into a collector whose plans, schema, or config fingerprint disagree
    with the one that wrote it, or when the checkpoint bytes fail CRC.
    """


class GridError(ReproError):
    """A grid definition or grid-sizing computation is invalid."""


class EstimationError(ReproError):
    """An estimation routine failed to produce a usable result."""


class ConfigurationError(ReproError):
    """A strategy or experiment configuration is invalid."""


class NotFittedError(ReproError):
    """An aggregator was queried before data collection ran."""


class ConvergenceWarning(UserWarning):
    """An iterative fit (Algorithm 3 / 4 IPF sweep) hit its iteration cap.

    Emitted via :func:`warnings.warn` when a response-matrix or λ-D
    estimate stops at ``max_iters`` with the sweep change still above the
    ``1/n`` threshold. The estimate is still returned — non-convergence
    bounds its residual, it does not invalidate it — but callers that care
    can escalate the warning or inspect
    :meth:`repro.core.Aggregator.fit_diagnostics`.
    """
